//! The two protocol endpoints as state machines: the stationary computer
//! (primary copy, issues writes) and the mobile computer (optional replica,
//! issues reads).
//!
//! This implements §4's division of labour literally. For the window-based
//! policies, "either the mobile computer or the stationary computer (but not
//! both) is in charge of maintaining the window": the side with the replica
//! sees every relevant request (local reads + propagated writes), the side
//! without sees them too (remote reads + its own writes). Ownership moves
//! with the replica, the window piggybacking on the allocating data response
//! or the deallocating delete-request.
//!
//! For T1m the SC is in charge during the one-copy phase (it sees the remote
//! reads and its own writes, so it can count consecutive reads); for T2m the
//! MC is in charge during the two-copies phase (it sees its own reads and
//! the propagated writes, so it can count consecutive writes).

use crate::wire::WireMessage;
use mdr_core::{PolicySpec, Request, RequestWindow};

/// Policy-specific bookkeeping on the stationary side.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ScCharge {
    /// Nothing to track (statics; or the MC is currently in charge).
    Idle,
    /// Window-based policy with the SC in charge of the window.
    Window(RequestWindow),
    /// T1m one-copy phase: counting consecutive remote reads.
    ReadStreak(usize),
}

/// The stationary computer: owns the primary copy and the write stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StationaryNode {
    policy: PolicySpec,
    /// Monotone version counter standing in for the item value.
    version: u64,
    /// SC's view of whether the MC holds a replica (its commitment to
    /// propagate writes).
    mc_has_copy: bool,
    charge: ScCharge,
}

impl StationaryNode {
    /// Initial state for `policy`. Replica-holding policies (ST2, T2m)
    /// start with the MC subscribed; the window policies cold-start without
    /// a replica, the SC in charge with an all-writes window.
    pub fn new(policy: PolicySpec) -> Self {
        let (mc_has_copy, charge) = match policy {
            PolicySpec::St1 => (false, ScCharge::Idle),
            PolicySpec::St2 => (true, ScCharge::Idle),
            PolicySpec::SlidingWindow { k } => (
                false,
                ScCharge::Window(RequestWindow::filled(k, Request::Write)),
            ),
            PolicySpec::T1 { .. } => (false, ScCharge::ReadStreak(0)),
            PolicySpec::T2 { .. } => (true, ScCharge::Idle),
        };
        StationaryNode {
            policy,
            version: 0,
            mc_has_copy,
            charge,
        }
    }

    /// Current item version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the SC believes the MC holds a replica.
    pub fn mc_has_copy(&self) -> bool {
        self.mc_has_copy
    }

    /// Whether the SC currently maintains the request window (window-based
    /// policies only).
    pub fn in_charge(&self) -> bool {
        matches!(self.charge, ScCharge::Window(_))
    }

    /// Serves a remote read request, producing the data response. Updates
    /// the window / streak and decides whether to hand the replica (and,
    /// for window policies, the window) to the MC.
    pub fn handle_read_request(&mut self) -> WireMessage {
        debug_assert!(
            !self.mc_has_copy,
            "remote read while the MC holds a replica"
        );
        match (&mut self.charge, self.policy) {
            (ScCharge::Idle, PolicySpec::St1) => {
                WireMessage::data_response(self.version, false, None)
            }
            (ScCharge::Window(w), _) => {
                w.push(Request::Read);
                if w.majority_reads() {
                    // §4: piggyback the save indication and the window; the
                    // MC takes charge from here.
                    let window = w.canonical();
                    self.charge = ScCharge::Idle;
                    self.mc_has_copy = true;
                    WireMessage::data_response(self.version, true, Some(window))
                } else {
                    WireMessage::data_response(self.version, false, None)
                }
            }
            (ScCharge::ReadStreak(streak), PolicySpec::T1 { m }) => {
                *streak += 1;
                if *streak >= m {
                    self.charge = ScCharge::Idle;
                    self.mc_has_copy = true;
                    WireMessage::data_response(self.version, true, None)
                } else {
                    WireMessage::data_response(self.version, false, None)
                }
            }
            (ScCharge::Idle, PolicySpec::T2 { .. }) => {
                // One-copy phase ends at the next read.
                self.mc_has_copy = true;
                WireMessage::data_response(self.version, true, None)
            }
            (charge, policy) => {
                unreachable!("remote read in impossible state: {policy:?} / {charge:?}")
            }
        }
    }

    /// Applies a local write (bumping the version) and returns the message
    /// to send to the MC, if any.
    pub fn handle_local_write(&mut self) -> Option<WireMessage> {
        self.version += 1;
        if !self.mc_has_copy {
            // Track the request if the SC is in charge; the write stays
            // local either way.
            match &mut self.charge {
                ScCharge::Window(w) => {
                    w.push(Request::Write);
                    debug_assert!(!w.majority_reads(), "a write cannot create a read majority");
                }
                ScCharge::ReadStreak(streak) => *streak = 0,
                ScCharge::Idle => {}
            }
            return None;
        }
        match self.policy {
            PolicySpec::St2 => Some(WireMessage::write_propagation(self.version)),
            PolicySpec::SlidingWindow { k: 1 } => {
                // SW1 optimization (§4): the post-write window is [w]
                // whatever it held before, so skip the propagation and send
                // the delete-request directly, retaking charge.
                self.mc_has_copy = false;
                self.charge = ScCharge::Window(RequestWindow::filled(1, Request::Write));
                Some(WireMessage::delete_request(None))
            }
            PolicySpec::SlidingWindow { .. } | PolicySpec::T2 { .. } => {
                // MC is in charge; propagate and let it decide.
                Some(WireMessage::write_propagation(self.version))
            }
            PolicySpec::T1 { .. } => {
                // Two-copies phase ends at the first write; the SC knows, so
                // it sends only the delete-request.
                self.mc_has_copy = false;
                self.charge = ScCharge::ReadStreak(0);
                Some(WireMessage::delete_request(None))
            }
            PolicySpec::St1 => unreachable!("ST1 never grants the MC a replica"),
        }
    }

    /// Handles the MC's reconnection announcement after a crash (fault-model
    /// extension; see `docs/faults.md`), re-validating the replica the MC
    /// reports against the SC's own commitment. Returns the version to
    /// re-ship on the acknowledgement, if the policy re-establishes the
    /// replica during recovery (ST2).
    ///
    /// If the MC reports its replica lost while the commitment says it held
    /// one, the SC retracts the commitment and takes back whatever the MC
    /// was in charge of: window policies reconstruct a conservative
    /// all-writes window (the §4 cold-start state), T1m restarts its read
    /// streak, and T2m falls back to its one-copy phase.
    pub fn handle_reconnect(&mut self, cached_version: Option<u64>) -> Option<u64> {
        if let Some(v) = cached_version {
            // The replica survived in stable storage; it cannot be stale
            // because propagated writes queue while the MC is unreachable.
            debug_assert!(
                self.mc_has_copy,
                "MC reports a replica the SC never granted"
            );
            debug_assert_eq!(v, self.version, "reconnected replica is stale");
            return None;
        }
        if !self.mc_has_copy {
            return None; // nothing was lost
        }
        match self.policy {
            PolicySpec::St2 => return Some(self.version),
            PolicySpec::SlidingWindow { k } => {
                self.mc_has_copy = false;
                self.charge = ScCharge::Window(RequestWindow::filled(k, Request::Write));
            }
            PolicySpec::T1 { .. } => {
                self.mc_has_copy = false;
                self.charge = ScCharge::ReadStreak(0);
            }
            PolicySpec::T2 { .. } => {
                self.mc_has_copy = false;
                self.charge = ScCharge::Idle;
            }
            PolicySpec::St1 => unreachable!("ST1 never grants the MC a replica"),
        }
        None
    }

    /// Handles a delete-request from the MC (after a propagated write
    /// flipped the window majority, or T2m's streak completed). For window
    /// policies the SC takes charge of the shipped window.
    pub fn handle_delete_request(&mut self, window: Option<RequestWindow>) {
        debug_assert!(
            self.mc_has_copy,
            "delete-request without a replica outstanding"
        );
        self.mc_has_copy = false;
        match self.policy {
            PolicySpec::SlidingWindow { .. } => {
                let Some(w) = window else {
                    panic!("window policies piggyback the window on delete-requests")
                };
                self.charge = ScCharge::Window(w);
            }
            PolicySpec::T2 { .. } => {
                self.charge = ScCharge::Idle;
            }
            other => unreachable!("{other:?} never receives MC-side delete-requests"),
        }
    }
}

/// Policy-specific bookkeeping on the mobile side.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum McCharge {
    /// Nothing to track (statics, T1m; or the SC is in charge).
    Idle,
    /// Window-based policy with the MC in charge of the window.
    Window(RequestWindow),
    /// T2m two-copies phase: counting consecutive propagated writes.
    WriteStreak(usize),
}

/// The mobile computer: issues reads, optionally holds a replica.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MobileNode {
    policy: PolicySpec,
    /// The cached version, if the MC holds a replica.
    cache: Option<u64>,
    charge: McCharge,
}

impl MobileNode {
    /// Initial state for `policy`, mirroring
    /// [`StationaryNode::new`].
    pub fn new(policy: PolicySpec) -> Self {
        let (cache, charge) = match policy {
            PolicySpec::St1 | PolicySpec::SlidingWindow { .. } | PolicySpec::T1 { .. } => {
                (None, McCharge::Idle)
            }
            PolicySpec::St2 => (Some(0), McCharge::Idle),
            PolicySpec::T2 { .. } => (Some(0), McCharge::WriteStreak(0)),
        };
        MobileNode {
            policy,
            cache,
            charge,
        }
    }

    /// Whether the MC holds a replica.
    pub fn has_copy(&self) -> bool {
        self.cache.is_some()
    }

    /// The cached version, if any.
    pub fn cached_version(&self) -> Option<u64> {
        self.cache
    }

    /// Whether the MC currently maintains the request window.
    pub fn in_charge(&self) -> bool {
        matches!(self.charge, McCharge::Window(_))
    }

    /// Serves a read from the local replica. Returns the version read.
    ///
    /// # Panics
    ///
    /// Panics if the MC holds no replica (the caller must go remote then).
    pub fn handle_local_read(&mut self) -> u64 {
        let Some(version) = self.cache else {
            panic!("local read without a replica")
        };
        match &mut self.charge {
            McCharge::Window(w) => {
                w.push(Request::Read);
                debug_assert!(w.majority_reads(), "a read cannot destroy a read majority");
            }
            McCharge::WriteStreak(streak) => *streak = 0,
            McCharge::Idle => {}
        }
        version
    }

    /// Handles the data response to a remote read. Returns the version
    /// read; caches it (and takes charge of any piggybacked window) when
    /// `allocate` is set.
    pub fn handle_data_response(
        &mut self,
        version: u64,
        allocate: bool,
        window: Option<RequestWindow>,
    ) -> u64 {
        if allocate {
            self.cache = Some(version);
            match self.policy {
                PolicySpec::SlidingWindow { .. } => {
                    let Some(w) = window else {
                        panic!("window policies piggyback the window on allocation")
                    };
                    self.charge = McCharge::Window(w);
                }
                PolicySpec::T2 { .. } => {
                    self.charge = McCharge::WriteStreak(0);
                }
                _ => {}
            }
        }
        version
    }

    /// Handles a propagated write: refreshes the replica and, if the MC is
    /// in charge and the policy says so, answers with the deallocating
    /// delete-request.
    pub fn handle_write_propagation(&mut self, version: u64) -> Option<WireMessage> {
        debug_assert!(
            self.cache.is_some(),
            "write propagated to an MC without a replica"
        );
        self.cache = Some(version);
        match (&mut self.charge, self.policy) {
            (McCharge::Idle, PolicySpec::St2) => None,
            (McCharge::Window(w), PolicySpec::SlidingWindow { .. }) => {
                w.push(Request::Write);
                if w.majority_reads() {
                    None
                } else {
                    // Writes outnumber reads: deallocate, shipping the
                    // window back (§4).
                    let window = w.canonical();
                    self.cache = None;
                    self.charge = McCharge::Idle;
                    Some(WireMessage::delete_request(Some(window)))
                }
            }
            (McCharge::WriteStreak(streak), PolicySpec::T2 { m }) => {
                *streak += 1;
                if *streak >= m {
                    self.cache = None;
                    self.charge = McCharge::Idle;
                    Some(WireMessage::delete_request(None))
                } else {
                    None
                }
            }
            (charge, policy) => {
                unreachable!("write propagation in impossible state: {policy:?} / {charge:?}")
            }
        }
    }

    /// Handles a delete-request from the SC (SW1 / T1m): drops the replica.
    pub fn handle_delete_request(&mut self) {
        debug_assert!(self.cache.is_some(), "delete-request without a replica");
        self.cache = None;
        self.charge = McCharge::Idle;
    }

    /// Discards the volatile state a crash destroys — the replica and any
    /// window/streak bookkeeping the MC was in charge of (fault-model
    /// extension; see `docs/faults.md`).
    pub fn lose_volatile_state(&mut self) {
        self.cache = None;
        self.charge = McCharge::Idle;
    }

    /// Handles the SC's reconnection acknowledgement: re-caches the replica
    /// if the SC re-shipped the item (ST2 recovery).
    pub fn handle_reconnect_ack(&mut self, refresh: Option<u64>) {
        if let Some(version) = refresh {
            self.cache = Some(version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_states_match_policies() {
        assert!(!MobileNode::new(PolicySpec::St1).has_copy());
        assert!(MobileNode::new(PolicySpec::St2).has_copy());
        assert!(!MobileNode::new(PolicySpec::SlidingWindow { k: 3 }).has_copy());
        assert!(MobileNode::new(PolicySpec::T2 { m: 2 }).has_copy());
        let sc = StationaryNode::new(PolicySpec::SlidingWindow { k: 3 });
        assert!(sc.in_charge());
        assert!(!sc.mc_has_copy());
    }

    #[test]
    fn swk_allocation_handshake_moves_the_window() {
        let spec = PolicySpec::SlidingWindow { k: 3 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);

        // First remote read: window [w w r], no allocation.
        let resp = sc.handle_read_request();
        match resp {
            WireMessage::DataResponse {
                allocate: false,
                window: None,
                version,
            } => {
                mc.handle_data_response(version, false, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(sc.in_charge() && !mc.in_charge());

        // Second remote read flips the majority: the window travels.
        let resp = sc.handle_read_request();
        match resp {
            WireMessage::DataResponse {
                allocate: true,
                window: Some(w),
                version,
            } => {
                assert_eq!(w.reads(), 2);
                mc.handle_data_response(version, true, Some(w));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!sc.in_charge() && mc.in_charge());
        assert!(mc.has_copy() && sc.mc_has_copy());
    }

    #[test]
    fn swk_deallocation_handshake_returns_the_window() {
        let spec = PolicySpec::SlidingWindow { k: 3 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        // Allocate via two reads.
        for _ in 0..2 {
            if let WireMessage::DataResponse {
                version,
                allocate,
                window,
            } = sc.handle_read_request()
            {
                mc.handle_data_response(version, allocate, window);
            }
        }
        // One write keeps the copy ([w r r] → [r r w]: still majority reads).
        let msg = sc.handle_local_write().unwrap();
        assert!(matches!(msg, WireMessage::WritePropagation { .. }));
        if let WireMessage::WritePropagation { version } = msg {
            assert_eq!(mc.handle_write_propagation(version), None);
        }
        // Second write flips: MC answers with the window.
        let msg = sc.handle_local_write().unwrap();
        if let WireMessage::WritePropagation { version } = msg {
            match mc.handle_write_propagation(version) {
                Some(WireMessage::DeleteRequest { window: Some(w) }) => {
                    sc.handle_delete_request(Some(w));
                }
                other => panic!("expected delete-request, got {other:?}"),
            }
        }
        assert!(!mc.has_copy() && !sc.mc_has_copy());
        assert!(sc.in_charge() && !mc.in_charge());
    }

    #[test]
    fn sw1_write_short_circuits_to_delete_request() {
        let spec = PolicySpec::SlidingWindow { k: 1 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        if let WireMessage::DataResponse {
            version,
            allocate,
            window,
        } = sc.handle_read_request()
        {
            assert!(allocate, "a single read flips a k = 1 window");
            mc.handle_data_response(version, allocate, window);
        }
        let msg = sc.handle_local_write().unwrap();
        assert!(matches!(msg, WireMessage::DeleteRequest { window: None }));
        mc.handle_delete_request();
        assert!(!mc.has_copy());
        assert!(sc.in_charge());
    }

    #[test]
    fn replica_version_tracks_writes() {
        let spec = PolicySpec::St2;
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        for expected in 1..=5u64 {
            let msg = sc.handle_local_write().unwrap();
            if let WireMessage::WritePropagation { version } = msg {
                assert_eq!(version, expected);
                mc.handle_write_propagation(version);
            }
            assert_eq!(mc.cached_version(), Some(expected));
            assert_eq!(mc.handle_local_read(), sc.version());
        }
    }

    #[test]
    fn t1_counts_consecutive_reads_on_the_sc() {
        let spec = PolicySpec::T1 { m: 2 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        // Read, write (streak reset), read, read → allocate on the last.
        if let WireMessage::DataResponse { allocate, .. } = sc.handle_read_request() {
            assert!(!allocate);
        }
        assert_eq!(sc.handle_local_write(), None);
        if let WireMessage::DataResponse { allocate, .. } = sc.handle_read_request() {
            assert!(!allocate);
        }
        if let WireMessage::DataResponse {
            version,
            allocate,
            window,
        } = sc.handle_read_request()
        {
            assert!(allocate);
            mc.handle_data_response(version, allocate, window);
        }
        assert!(mc.has_copy());
        // The next write ends the phase with a bare delete-request.
        let msg = sc.handle_local_write().unwrap();
        assert!(matches!(msg, WireMessage::DeleteRequest { window: None }));
        mc.handle_delete_request();
        assert!(!mc.has_copy());
    }

    #[test]
    fn t2_counts_consecutive_writes_on_the_mc() {
        let spec = PolicySpec::T2 { m: 2 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        // Write, read (streak reset on MC), write, write → delete-request.
        if let Some(WireMessage::WritePropagation { version }) = sc.handle_local_write() {
            assert_eq!(mc.handle_write_propagation(version), None);
        }
        mc.handle_local_read();
        if let Some(WireMessage::WritePropagation { version }) = sc.handle_local_write() {
            assert_eq!(mc.handle_write_propagation(version), None);
        }
        if let Some(WireMessage::WritePropagation { version }) = sc.handle_local_write() {
            match mc.handle_write_propagation(version) {
                Some(WireMessage::DeleteRequest { window: None }) => {
                    sc.handle_delete_request(None);
                }
                other => panic!("expected delete-request, got {other:?}"),
            }
        }
        assert!(!mc.has_copy() && !sc.mc_has_copy());
        // Next read reacquires.
        if let WireMessage::DataResponse {
            version,
            allocate,
            window,
        } = sc.handle_read_request()
        {
            assert!(allocate);
            mc.handle_data_response(version, allocate, window);
        }
        assert!(mc.has_copy());
    }

    #[test]
    fn reconnect_hands_the_window_back_after_a_volatile_crash() {
        let spec = PolicySpec::SlidingWindow { k: 3 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        // Two reads allocate and put the MC in charge.
        for _ in 0..2 {
            if let WireMessage::DataResponse {
                version,
                allocate,
                window,
            } = sc.handle_read_request()
            {
                mc.handle_data_response(version, allocate, window);
            }
        }
        assert!(mc.in_charge());
        mc.lose_volatile_state();
        let refresh = sc.handle_reconnect(mc.cached_version());
        assert_eq!(refresh, None, "window policies do not re-ship on recovery");
        assert!(sc.in_charge(), "window ownership handed back to the SC");
        assert!(!sc.mc_has_copy());
        mc.handle_reconnect_ack(refresh);
        assert!(!mc.has_copy());
    }

    #[test]
    fn st2_reconnect_re_ships_the_item() {
        let spec = PolicySpec::St2;
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        if let Some(WireMessage::WritePropagation { version }) = sc.handle_local_write() {
            mc.handle_write_propagation(version);
        }
        mc.lose_volatile_state();
        let refresh = sc.handle_reconnect(mc.cached_version());
        assert_eq!(refresh, Some(1), "ST2 recovery re-establishes the replica");
        assert!(sc.mc_has_copy(), "the commitment survives the crash");
        mc.handle_reconnect_ack(refresh);
        assert_eq!(mc.cached_version(), Some(sc.version()));
    }

    #[test]
    fn stable_crash_reconnect_changes_nothing() {
        let spec = PolicySpec::SlidingWindow { k: 1 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        if let WireMessage::DataResponse {
            version,
            allocate,
            window,
        } = sc.handle_read_request()
        {
            mc.handle_data_response(version, allocate, window);
        }
        let before = (sc.clone(), mc.clone());
        // The replica survived in stable storage: revalidation is a no-op.
        let refresh = sc.handle_reconnect(mc.cached_version());
        assert_eq!(refresh, None);
        mc.handle_reconnect_ack(refresh);
        assert_eq!((sc, mc), before);
    }

    #[test]
    fn exactly_one_side_in_charge_for_window_policies() {
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let mut sc = StationaryNode::new(spec);
        let mut mc = MobileNode::new(spec);
        let check = |sc: &StationaryNode, mc: &MobileNode| {
            assert_ne!(
                sc.in_charge(),
                mc.in_charge(),
                "exactly one side must own the window"
            );
        };
        check(&sc, &mc);
        for _ in 0..3 {
            if let WireMessage::DataResponse {
                version,
                allocate,
                window,
            } = sc.handle_read_request()
            {
                mc.handle_data_response(version, allocate, window);
            }
            check(&sc, &mc);
        }
        for _ in 0..3 {
            match sc.handle_local_write() {
                Some(WireMessage::WritePropagation { version }) => {
                    if let Some(WireMessage::DeleteRequest { window }) =
                        mc.handle_write_propagation(version)
                    {
                        sc.handle_delete_request(window);
                    }
                }
                Some(other) => panic!("unexpected {other:?}"),
                None => {}
            }
            check(&sc, &mc);
        }
    }
}
