//! Deterministic parallel sweep engine.
//!
//! A [`SweepGrid`] declares a cross-product of simulation cells —
//! policy × θ × cost model (ω) × fault plan × ARQ transport ×
//! replication — and executes
//! them across a thread pool with a hard guarantee: **the result is
//! byte-identical to the serial path regardless of thread count, chunk
//! size, or OS scheduling**. The guarantee rests on three design rules:
//!
//! 1. *Seeds are positional.* Every run's RNG seeds derive from the grid
//!    seed and the run's coordinates in the canonical enumeration order
//!    via the SplitMix64 finalizer ([`derive_seed`]) — never from a
//!    shared RNG, thread id, or clock. The workload seed depends only on
//!    the (θ, replication) coordinates, so cells that differ only in
//!    policy or fault plan replay the *same* arrival stream — paired
//!    comparisons, exactly as the per-experiment loops always did.
//! 2. *Work is claimed, results are reassembled.* [`parallel_map`] lets
//!    workers race for fixed index chunks, but returns outputs in index
//!    order, so the caller never observes completion order.
//! 3. *Reduction is sequential.* The per-cell reports are folded into the
//!    [`SweepSummary`] in cell-index order on one thread in both the
//!    serial and parallel paths, so float non-associativity cannot leak
//!    scheduling noise into the statistics.
//!
//! The canonical cell order is policy (outermost) → θ → fault plan →
//! ARQ transport → replication → cost model (innermost). The cost model
//! only re-prices an
//! already-simulated run — ω is a billing parameter, not a protocol
//! parameter — so cells that differ only in the model share one
//! simulation run and *must* report identical ledgers.
//!
//! See `docs/sweeps.md` for the seed-derivation spec, the
//! [`SweepSummary`] merge law, and the migration table from the
//! deprecated per-experiment loops.

use crate::builder::{validate_latency, validate_policy};
use crate::faults::{ArqConfig, ConfigError, FaultPlan};
use crate::sim::{RunLimit, SimConfig, SimReport, Simulation};
use crate::topology::TopologyConfig;
use crate::workload::PoissonWorkload;
use mdr_core::{CostModel, PolicySpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The SplitMix64 output mixer (Steele, Lea & Flood, OOPSLA 2014): a
/// bijective avalanche over `u64` used to turn structured (seed, stream,
/// index) triples into statistically independent RNG seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed streams keep the workload, fault and transport RNGs of one run
/// independent even though all derive from the same grid seed and
/// (θ, replication) coordinates.
pub mod streams {
    /// Arrival-process RNG.
    pub const WORKLOAD: u64 = 0;
    /// Fault-schedule RNG.
    pub const FAULT: u64 = 1;
    /// ARQ transport RNG (loss fates and backoff jitter).
    pub const ARQ: u64 = 2;
    /// Topology RNG (migration dwell times, destination cells, handoff-leg
    /// loss fates and ghost draws).
    pub const TOPOLOGY: u64 = 3;
}

/// Derives the RNG seed for (`stream`, `index`) under `grid_seed`.
///
/// Pure function of its arguments: the same triple always yields the same
/// seed, which is what makes sweep results independent of execution
/// order. Distinct triples map to distinct-looking seeds through a double
/// SplitMix64 pass.
pub fn derive_seed(grid_seed: u64, stream: u64, index: u64) -> u64 {
    splitmix64(grid_seed ^ splitmix64(index.wrapping_mul(2).wrapping_add(stream)))
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        // A panicking worker already aborts the test/process outcome; the
        // data itself is still consistent for the panic propagation path.
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `0..n` using up to `threads` OS threads and returns the
/// results **in index order**.
///
/// `threads == 0` means "use the machine's available parallelism";
/// `chunk == 0` picks a chunk size of roughly four chunks per thread.
/// Workers claim fixed `[start, start + chunk)` index ranges from an
/// atomic cursor, so which thread computes which index is racy — but the
/// output vector is reassembled by index, and `f` receives only the
/// index, so the caller cannot observe the race. With one thread (or
/// `n <= 1`) no threads are spawned at all.
pub fn parallel_map<T, F>(n: usize, threads: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = if chunk == 0 {
        n.div_ceil(threads * 4).max(1)
    } else {
        chunk
    };
    let cursor = AtomicUsize::new(0);
    let chunks: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let out: Vec<T> = (start..end).map(&f).collect();
                lock(&chunks).push((start, out));
            });
        }
    });
    let mut chunks = match chunks.into_inner() {
        Ok(chunks) => chunks,
        Err(poisoned) => poisoned.into_inner(),
    };
    chunks.sort_by_key(|&(start, _)| start);
    chunks.into_iter().flat_map(|(_, out)| out).collect()
}

/// Execution knobs for [`SweepGrid::run`]. `0` means "auto" for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOptions {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Runs per work-stealing chunk (`0` = ~4 chunks per thread).
    pub chunk: usize,
}

/// A declarative parameter grid: the cross-product of every axis below,
/// enumerated policy → θ → fault plan → replication → cost model.
///
/// Construct with [`SweepGrid::new`] and the fallible axis setters (same
/// `Result<Self, ConfigError>` idiom as [`crate::SimBuilder`]), then
/// execute with [`SweepGrid::run`] or [`SweepGrid::run_serial`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    policies: Vec<PolicySpec>,
    thetas: Vec<f64>,
    models: Vec<CostModel>,
    faults: Vec<Option<FaultPlan>>,
    arqs: Vec<Option<ArqConfig>>,
    topologies: Vec<Option<TopologyConfig>>,
    replications: usize,
    requests: usize,
    latency: f64,
    oracle: bool,
    seed: u64,
}

impl SweepGrid {
    /// A 1×1×1×1×1 grid (ST1, θ = 0.5, connection model, no faults, one
    /// replication of 10 000 requests) under `seed`; grow it with the
    /// axis setters.
    pub fn new(seed: u64) -> SweepGrid {
        SweepGrid {
            policies: vec![PolicySpec::St1],
            thetas: vec![0.5],
            models: vec![CostModel::Connection],
            faults: vec![None],
            arqs: vec![None],
            topologies: vec![None],
            replications: 1,
            requests: 10_000,
            latency: 0.01,
            oracle: false,
            seed,
        }
    }

    /// Sets the policy axis.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] on an empty list;
    /// [`ConfigError::EvenWindow`] / [`ConfigError::ZeroThreshold`] for a
    /// structurally invalid policy.
    pub fn policies(mut self, policies: Vec<PolicySpec>) -> Result<Self, ConfigError> {
        if policies.is_empty() {
            return Err(ConfigError::EmptyAxis { what: "policies" });
        }
        for &policy in &policies {
            validate_policy(policy)?;
        }
        self.policies = policies;
        Ok(self)
    }

    /// Sets the write-fraction axis.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] on an empty list; [`ConfigError::Theta`]
    /// unless every θ lies in `[0, 1]`.
    pub fn thetas(mut self, thetas: Vec<f64>) -> Result<Self, ConfigError> {
        if thetas.is_empty() {
            return Err(ConfigError::EmptyAxis { what: "thetas" });
        }
        if let Some(&bad) = thetas.iter().find(|t| !(0.0..=1.0).contains(*t)) {
            return Err(ConfigError::Theta { value: bad });
        }
        self.thetas = thetas;
        Ok(self)
    }

    /// Sets the cost-model axis. Models are pricing-only: they re-bill the
    /// same simulated runs, they never change the protocol.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] on an empty list; [`ConfigError::Omega`]
    /// unless every message model's ω is finite and non-negative.
    pub fn models(mut self, models: Vec<CostModel>) -> Result<Self, ConfigError> {
        if models.is_empty() {
            return Err(ConfigError::EmptyAxis { what: "models" });
        }
        for model in &models {
            if let CostModel::Message { omega } = model {
                if !(omega.is_finite() && *omega >= 0.0) {
                    return Err(ConfigError::Omega { value: *omega });
                }
            }
        }
        self.models = models;
        Ok(self)
    }

    /// Convenience: sets the model axis to `Message { omega }` for each ω.
    ///
    /// # Errors
    ///
    /// Same as [`SweepGrid::models`].
    pub fn omegas(self, omegas: Vec<f64>) -> Result<Self, ConfigError> {
        // Validate before mapping: `CostModel::message` itself panics on a
        // negative ω, and the sweep API promises errors, not panics.
        if let Some(&bad) = omegas.iter().find(|o| !(o.is_finite() && **o >= 0.0)) {
            return Err(ConfigError::Omega { value: bad });
        }
        self.models(omegas.into_iter().map(CostModel::message).collect())
    }

    /// Sets the fault-plan axis; `None` entries are fault-free baselines.
    /// Plans carry their own validation ([`FaultPlan::new`]); each run
    /// re-seeds its plan from the grid seed, so the plan's embedded seed
    /// is irrelevant here.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] on an empty list.
    pub fn fault_plans(mut self, faults: Vec<Option<FaultPlan>>) -> Result<Self, ConfigError> {
        if faults.is_empty() {
            return Err(ConfigError::EmptyAxis {
                what: "fault plans",
            });
        }
        self.faults = faults;
        Ok(self)
    }

    /// Sets the ARQ transport axis; `None` entries run the perfect
    /// (instant, lossless) link. Configs carry their own validation
    /// ([`ArqConfig::new`]); each run re-seeds its transport RNG from the
    /// grid seed, so the config's embedded seed is irrelevant here.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] on an empty list.
    pub fn arq_configs(mut self, arqs: Vec<Option<ArqConfig>>) -> Result<Self, ConfigError> {
        if arqs.is_empty() {
            return Err(ConfigError::EmptyAxis {
                what: "ARQ configs",
            });
        }
        self.arqs = arqs;
        Ok(self)
    }

    /// Sets the multi-cell topology axis; `None` entries run single-cell
    /// baselines. Configs carry their own validation
    /// ([`TopologyConfig::new`]); each run re-seeds its topology RNG from
    /// the grid seed, so the config's embedded seed is irrelevant here.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] on an empty list.
    pub fn topology_configs(
        mut self,
        topologies: Vec<Option<TopologyConfig>>,
    ) -> Result<Self, ConfigError> {
        if topologies.is_empty() {
            return Err(ConfigError::EmptyAxis { what: "topologies" });
        }
        self.topologies = topologies;
        Ok(self)
    }

    /// Sets the number of independent replications per cell.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroCount`] for zero.
    pub fn replications(mut self, replications: usize) -> Result<Self, ConfigError> {
        if replications == 0 {
            return Err(ConfigError::ZeroCount {
                what: "replications",
            });
        }
        self.replications = replications;
        Ok(self)
    }

    /// Sets the number of served requests per run.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroCount`] for zero.
    pub fn requests(mut self, requests: usize) -> Result<Self, ConfigError> {
        if requests == 0 {
            return Err(ConfigError::ZeroCount { what: "requests" });
        }
        self.requests = requests;
        Ok(self)
    }

    /// Sets the one-way link latency for every cell.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Latency`] unless finite and non-negative.
    pub fn latency(mut self, latency: f64) -> Result<Self, ConfigError> {
        validate_latency(latency)?;
        self.latency = latency;
        Ok(self)
    }

    /// Enables the per-request oracle equivalence check inside every run
    /// (off by default in sweeps: it roughly doubles the work).
    ///
    /// # Errors
    ///
    /// Never fails today; `Result` keeps the setter idiom uniform.
    pub fn oracle(mut self, oracle: bool) -> Result<Self, ConfigError> {
        self.oracle = oracle;
        Ok(self)
    }

    /// The grid seed all per-run seeds derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of simulation runs (cells ÷ models — the model axis
    /// re-prices runs instead of re-simulating them).
    pub fn runs(&self) -> usize {
        self.policies.len()
            * self.thetas.len()
            * self.faults.len()
            * self.arqs.len()
            * self.topologies.len()
            * self.replications
    }

    /// Number of priced cells in the grid.
    pub fn cells(&self) -> usize {
        self.runs() * self.models.len()
    }

    /// The per-run request cap (the [`requests`](Self::requests) builder
    /// setting) — surfaced so measurement tooling can record the exact
    /// workload size alongside its timings.
    pub fn requests_per_run(&self) -> usize {
        self.requests
    }

    /// The (θ, replication) slot of `run_index` — deliberately blind to
    /// the policy, fault, ARQ and topology axes, so every policy, fault
    /// plan, transport and topology at the same (θ, replication)
    /// coordinates draws the same seeds and the grid produces *paired*
    /// comparisons.
    fn workload_index(&self, run_index: usize) -> u64 {
        let reps = self.replications;
        let rep_index = run_index % reps;
        let theta_index = (run_index
            / (reps * self.topologies.len() * self.arqs.len() * self.faults.len()))
            % self.thetas.len();
        (theta_index * reps + rep_index) as u64
    }

    /// Arrival-process seed for `run_index` (shared across policies and
    /// fault plans).
    fn workload_seed(&self, run_index: usize) -> u64 {
        derive_seed(self.seed, streams::WORKLOAD, self.workload_index(run_index))
    }

    /// Fault-schedule seed for `run_index`: one stream slot per
    /// (fault plan, θ, replication) — shared across policies and ARQ
    /// configs so every policy and transport faces the same outage
    /// schedule, distinct per plan so plans don't echo each other.
    fn fault_seed(&self, run_index: usize) -> u64 {
        let fault_index = (run_index
            / (self.replications * self.topologies.len() * self.arqs.len()))
            % self.faults.len();
        let slots = (self.thetas.len() * self.replications) as u64;
        derive_seed(
            self.seed,
            streams::FAULT,
            fault_index as u64 * slots + self.workload_index(run_index),
        )
    }

    /// Transport seed for `run_index`: one stream slot per
    /// (ARQ config, θ, replication) — shared across policies and fault
    /// plans so every policy faces the same loss fates and jitter draws,
    /// distinct per config so configs don't echo each other.
    fn arq_seed(&self, run_index: usize) -> u64 {
        let arq_index = (run_index / (self.replications * self.topologies.len())) % self.arqs.len();
        let slots = (self.thetas.len() * self.replications) as u64;
        derive_seed(
            self.seed,
            streams::ARQ,
            arq_index as u64 * slots + self.workload_index(run_index),
        )
    }

    /// Topology seed for `run_index`: one stream slot per
    /// (topology, θ, replication) — shared across policies, fault plans
    /// and transports so every policy faces the same migration schedule
    /// and backbone fates, distinct per topology so topologies don't echo
    /// each other.
    fn topology_seed(&self, run_index: usize) -> u64 {
        let topology_index = (run_index / self.replications) % self.topologies.len();
        let slots = (self.thetas.len() * self.replications) as u64;
        derive_seed(
            self.seed,
            streams::TOPOLOGY,
            topology_index as u64 * slots + self.workload_index(run_index),
        )
    }

    /// Decodes `run_index` (canonical order: policy → θ → fault → ARQ →
    /// topology → replication) and executes that run.
    fn execute_run(&self, run_index: usize) -> SimReport {
        let reps = self.replications;
        let topos = self.topologies.len();
        let arqs = self.arqs.len();
        let faults = self.faults.len();
        let thetas = self.thetas.len();
        let topology_index = (run_index / reps) % topos;
        let arq_index = (run_index / (reps * topos)) % arqs;
        let fault_index = (run_index / (reps * topos * arqs)) % faults;
        let theta_index = (run_index / (reps * topos * arqs * faults)) % thetas;
        let policy_index = run_index / (reps * topos * arqs * faults * thetas);

        let mut config = SimConfig::defaults(self.policies[policy_index]);
        config.latency = self.latency;
        config.oracle_check = self.oracle;
        if let Some(plan) = &self.faults[fault_index] {
            let mut plan = plan.clone();
            plan.seed = self.fault_seed(run_index);
            config.faults = Some(plan);
        }
        if let Some(arq) = &self.arqs[arq_index] {
            let mut arq = *arq;
            arq.seed = self.arq_seed(run_index);
            config.arq = Some(arq);
        }
        if let Some(topology) = &self.topologies[topology_index] {
            let mut topology = *topology;
            topology.seed = self.topology_seed(run_index);
            config.topology = Some(topology);
        }
        let mut sim = Simulation::new(config);
        let mut workload = PoissonWorkload::from_theta(
            1.0,
            self.thetas[theta_index],
            self.workload_seed(run_index),
        );
        sim.run(&mut workload, RunLimit::Requests(self.requests))
    }

    /// Runs every cell serially on the calling thread. Reference path for
    /// the determinism guarantee: [`SweepGrid::run`] must produce a
    /// byte-identical [`SweepReport`] at any thread count.
    pub fn run_serial(&self) -> SweepReport {
        let reports: Vec<SimReport> = (0..self.runs()).map(|i| self.execute_run(i)).collect();
        self.assemble(reports)
    }

    /// Runs the grid across a thread pool and assembles the same
    /// [`SweepReport`] the serial path produces.
    pub fn run(&self, options: SweepOptions) -> SweepReport {
        let reports = parallel_map(self.runs(), options.threads, options.chunk, |i| {
            self.execute_run(i)
        });
        self.assemble(reports)
    }

    /// Runs like [`SweepGrid::run`] while timing the whole sweep: returns
    /// the usual deterministic report plus a [`PerfStats`](crate::perf::PerfStats) measurement
    /// (events processed across every run, wall time, events/sec). The
    /// report is bit-identical to what `run` produces — wall time never
    /// feeds simulation state, ledgers, or digests.
    pub fn run_timed(&self, options: SweepOptions) -> (SweepReport, crate::perf::PerfStats) {
        let watch = crate::perf::Stopwatch::start();
        let report = self.run(options);
        let stats = watch.stats(report.events_processed);
        (report, stats)
    }

    /// Prices the runs under every cost model and folds the summary —
    /// sequentially, in cell-index order, on the calling thread. This is
    /// the *only* reduction path; determinism follows from `reports`
    /// already being in run-index order.
    fn assemble(&self, reports: Vec<SimReport>) -> SweepReport {
        let reps = self.replications;
        let topos = self.topologies.len();
        let arqs = self.arqs.len();
        let faults = self.faults.len();
        let mut cells = Vec::with_capacity(self.cells());
        for (run_index, report) in reports.iter().enumerate() {
            let rep_index = run_index % reps;
            let topology_index = (run_index / reps) % topos;
            let arq_index = (run_index / (reps * topos)) % arqs;
            let fault_index = (run_index / (reps * topos * arqs)) % faults;
            let theta_index = (run_index / (reps * topos * arqs * faults)) % self.thetas.len();
            let policy_index = run_index / (reps * topos * arqs * faults * self.thetas.len());
            for &model in &self.models {
                cells.push(CellReport {
                    policy: self.policies[policy_index],
                    theta: self.thetas[theta_index],
                    model,
                    fault_index,
                    arq_index,
                    topology_index,
                    replication: rep_index,
                    workload_seed: self.workload_seed(run_index),
                    cost_per_request: report.try_cost_per_request(model),
                    report: report.clone(),
                });
            }
        }

        // Summary groups: (policy, θ, fault, ARQ, topology, model),
        // replications folded in ascending order within each group.
        let mut entries = Vec::new();
        for (policy_index, &policy) in self.policies.iter().enumerate() {
            for (theta_index, &theta) in self.thetas.iter().enumerate() {
                for fault_index in 0..faults {
                    for arq_index in 0..arqs {
                        for topology_index in 0..topos {
                            for &model in &self.models {
                                let mut entry = SweepEntry::empty(
                                    policy,
                                    theta,
                                    model,
                                    fault_index,
                                    arq_index,
                                    topology_index,
                                );
                                let analytic = mdr_analysis::expected_cost(policy, model, theta);
                                for rep_index in 0..reps {
                                    let run_index = ((((policy_index * self.thetas.len()
                                        + theta_index)
                                        * faults
                                        + fault_index)
                                        * arqs
                                        + arq_index)
                                        * topos
                                        + topology_index)
                                        * reps
                                        + rep_index;
                                    entry.push(&reports[run_index], model, analytic);
                                }
                                entries.push(entry);
                            }
                        }
                    }
                }
            }
        }
        let events_processed = reports.iter().map(|r| r.events_processed).sum();
        SweepReport {
            seed: self.seed,
            summary: SweepSummary { entries },
            cells,
            events_processed,
        }
    }
}

/// Streaming mean/variance accumulator (Welford), mergeable with Chan's
/// pairwise update so [`SweepSummary`] halves combine without revisiting
/// samples.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Moments {
    /// Sample count.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (`M2` in Welford's terms).
    pub m2: f64,
}

impl Default for Moments {
    fn default() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }
}

impl Moments {
    /// Folds one sample in (Welford's update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Chan's parallel combination: exact sample count, and mean/M2 equal
    /// to a sequential fold up to float rounding. (The sweep engine never
    /// relies on this for its byte-identity guarantee — it always folds
    /// sequentially; `merge` exists for combining summaries of *disjoint*
    /// grids, e.g. shards swept on different machines.)
    pub fn merge(&self, other: &Moments) -> Moments {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * (other.n as f64 / n as f64);
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64 / n as f64);
        Moments { n, mean, m2 }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Standard error of the mean (0 with no samples).
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }
}

/// Aggregate statistics for one (policy, θ, fault plan, ARQ config, cost
/// model) group of a sweep, folded over its replications.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepEntry {
    /// Allocation policy.
    pub policy: PolicySpec,
    /// Write fraction.
    pub theta: f64,
    /// Pricing model (ω lives here).
    pub model: CostModel,
    /// Index into the grid's fault-plan axis (0 = first plan / baseline).
    pub fault_index: usize,
    /// Index into the grid's ARQ axis (0 = first config / perfect link).
    pub arq_index: usize,
    /// Index into the grid's topology axis (0 = first entry / single cell).
    pub topology_index: usize,
    /// Per-request cost across replications (empty runs excluded).
    pub cost_per_request: Moments,
    /// Measured cost ÷ the Eq. 2–8 analytic expectation for the same
    /// (policy, model, θ) — the fault-free competitive position of each
    /// run; faulted cells read as overhead ratios against the clean
    /// prediction. Skipped when the analytic cost is 0 or non-finite.
    pub competitive_ratio: Moments,
    /// Requests served, summed over replications.
    pub requests: u64,
    /// Billed data messages, summed.
    pub data_messages: u64,
    /// Billed control messages, summed.
    pub control_messages: u64,
    /// Connections used, summed.
    pub connections: u64,
    /// Link-layer retransmissions, summed.
    pub retransmissions: u64,
    /// Injected disconnection windows, summed.
    pub disconnects: u64,
    /// Completed reconnection handshakes, summed.
    pub reconciliations: u64,
    /// ARQ acknowledgements billed, summed.
    pub arq_acks: u64,
    /// Retry-budget exhaustions escalated to declared partitions, summed.
    pub retry_escalations: u64,
    /// Requests shed while degraded, summed.
    pub shed_requests: u64,
    /// Reads served locally while degraded, summed.
    pub degraded_reads: u64,
    /// Mean time to recovery per replication (runs that never recovered
    /// are excluded — `n` says how many replications saw a recovery).
    pub mttr: Moments,
    /// Shed fraction — shed ÷ (served + shed) — per replication.
    pub shed_rate: Moments,
    /// Mean staleness of degraded reads per replication (runs with no
    /// degraded reads are excluded).
    pub staleness: Moments,
    /// Inter-cell migrations, summed over replications.
    pub migrations: u64,
    /// Handoffs committed at the target cell, summed.
    pub handoffs_committed: u64,
    /// Handoffs aborted back to the origin cell, summed.
    pub handoffs_aborted: u64,
    /// Backbone handoff-class messages billed, summed.
    pub handoff_messages: u64,
    /// Invalidation-class messages billed on commit, summed.
    pub invalidation_messages: u64,
    /// Reads served from a non-owner cell's stale replica, summed.
    pub stale_reads: u64,
}

impl SweepEntry {
    fn empty(
        policy: PolicySpec,
        theta: f64,
        model: CostModel,
        fault_index: usize,
        arq_index: usize,
        topology_index: usize,
    ) -> SweepEntry {
        SweepEntry {
            policy,
            theta,
            model,
            fault_index,
            arq_index,
            topology_index,
            cost_per_request: Moments::default(),
            competitive_ratio: Moments::default(),
            requests: 0,
            data_messages: 0,
            control_messages: 0,
            connections: 0,
            retransmissions: 0,
            disconnects: 0,
            reconciliations: 0,
            arq_acks: 0,
            retry_escalations: 0,
            shed_requests: 0,
            degraded_reads: 0,
            mttr: Moments::default(),
            shed_rate: Moments::default(),
            staleness: Moments::default(),
            migrations: 0,
            handoffs_committed: 0,
            handoffs_aborted: 0,
            handoff_messages: 0,
            invalidation_messages: 0,
            stale_reads: 0,
        }
    }

    fn push(&mut self, report: &SimReport, model: CostModel, analytic: f64) {
        if let Some(cost) = report.try_cost_per_request(model) {
            self.cost_per_request.push(cost);
            if analytic.is_finite() && analytic > 0.0 {
                self.competitive_ratio.push(cost / analytic);
            }
        }
        self.requests += report.counts.total();
        self.data_messages += report.data_messages;
        self.control_messages += report.control_messages;
        self.connections += report.connections;
        self.retransmissions += report.retransmissions;
        self.disconnects += report.disconnects;
        self.reconciliations += report.reconciliations;
        self.arq_acks += report.arq_acks;
        self.retry_escalations += report.retry_escalations;
        self.shed_requests += report.shed_requests();
        self.degraded_reads += report.degraded_reads;
        if let Some(mttr) = report.mean_time_to_recovery() {
            self.mttr.push(mttr);
        }
        let offered = report.counts.total() + report.shed_requests();
        if offered > 0 {
            self.shed_rate
                .push(report.shed_requests() as f64 / offered as f64);
        }
        if let Some(staleness) = report.mean_staleness() {
            self.staleness.push(staleness);
        }
        self.migrations += report.migrations;
        self.handoffs_committed += report.handoffs_committed;
        self.handoffs_aborted += report.handoffs_aborted;
        self.handoff_messages += report.handoff_messages;
        self.invalidation_messages += report.invalidation_messages;
        self.stale_reads += report.stale_reads;
    }

    fn same_group(&self, other: &SweepEntry) -> bool {
        self.policy == other.policy
            && self.theta.to_bits() == other.theta.to_bits()
            && self.fault_index == other.fault_index
            && self.arq_index == other.arq_index
            && self.topology_index == other.topology_index
            && match (self.model, other.model) {
                (CostModel::Connection, CostModel::Connection) => true,
                (CostModel::Message { omega: a }, CostModel::Message { omega: b }) => {
                    a.to_bits() == b.to_bits()
                }
                _ => false,
            }
    }

    fn merge(&self, other: &SweepEntry) -> SweepEntry {
        SweepEntry {
            policy: self.policy,
            theta: self.theta,
            model: self.model,
            fault_index: self.fault_index,
            arq_index: self.arq_index,
            topology_index: self.topology_index,
            cost_per_request: self.cost_per_request.merge(&other.cost_per_request),
            competitive_ratio: self.competitive_ratio.merge(&other.competitive_ratio),
            requests: self.requests + other.requests,
            data_messages: self.data_messages + other.data_messages,
            control_messages: self.control_messages + other.control_messages,
            connections: self.connections + other.connections,
            retransmissions: self.retransmissions + other.retransmissions,
            disconnects: self.disconnects + other.disconnects,
            reconciliations: self.reconciliations + other.reconciliations,
            arq_acks: self.arq_acks + other.arq_acks,
            retry_escalations: self.retry_escalations + other.retry_escalations,
            shed_requests: self.shed_requests + other.shed_requests,
            degraded_reads: self.degraded_reads + other.degraded_reads,
            mttr: self.mttr.merge(&other.mttr),
            shed_rate: self.shed_rate.merge(&other.shed_rate),
            staleness: self.staleness.merge(&other.staleness),
            migrations: self.migrations + other.migrations,
            handoffs_committed: self.handoffs_committed + other.handoffs_committed,
            handoffs_aborted: self.handoffs_aborted + other.handoffs_aborted,
            handoff_messages: self.handoff_messages + other.handoff_messages,
            invalidation_messages: self.invalidation_messages + other.invalidation_messages,
            stale_reads: self.stale_reads + other.stale_reads,
        }
    }
}

/// The reduced statistics of a sweep: one [`SweepEntry`] per
/// (policy, θ, fault, model) group, in canonical grid order.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepSummary {
    /// Group entries in canonical order.
    pub entries: Vec<SweepEntry>,
}

impl SweepSummary {
    /// Combines two summaries of the *same grid shape* swept over disjoint
    /// replication sets (e.g. shards run on different machines):
    /// `summary(A ⊎ B) = summary(A).merge(summary(B))` with counts exact
    /// and moments combined by Chan's law. Returns `None` when the entry
    /// lists don't describe the same groups in the same order.
    pub fn merge(&self, other: &SweepSummary) -> Option<SweepSummary> {
        if self.entries.len() != other.entries.len() {
            return None;
        }
        let mut entries = Vec::with_capacity(self.entries.len());
        for (a, b) in self.entries.iter().zip(&other.entries) {
            if !a.same_group(b) {
                return None;
            }
            entries.push(a.merge(b));
        }
        Some(SweepSummary { entries })
    }
}

/// One priced cell of a sweep: a simulated run billed under one model.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Allocation policy.
    pub policy: PolicySpec,
    /// Write fraction.
    pub theta: f64,
    /// Pricing model.
    pub model: CostModel,
    /// Index into the fault-plan axis.
    pub fault_index: usize,
    /// Index into the ARQ axis.
    pub arq_index: usize,
    /// Index into the topology axis.
    pub topology_index: usize,
    /// Replication number within the group.
    pub replication: usize,
    /// The derived arrival-process seed this run used.
    pub workload_seed: u64,
    /// Per-request cost, `None` for an empty run.
    pub cost_per_request: Option<f64>,
    /// The full simulation report (cells sharing a run carry clones of
    /// the same report).
    pub report: SimReport,
}

/// Everything a sweep produced: the full per-cell ledger plus the reduced
/// summary. Two `SweepReport`s compare equal iff every cell — schedule,
/// ledger, bill, fault counters — is identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The grid seed the runs derived from.
    pub seed: u64,
    /// Per-cell results in canonical order (model innermost).
    pub cells: Vec<CellReport>,
    /// The sequential fold of the cells.
    pub summary: SweepSummary,
    /// Events the simulation loops processed, summed over every run —
    /// a deterministic fact of the grid (identical at any thread count),
    /// and the event count [`SweepGrid::run_timed`] measures throughput
    /// over.
    pub events_processed: u64,
}

impl SweepReport {
    /// FNV-1a digest of the full cost ledger — every cell's action counts,
    /// billing totals, fault counters and cost bits, in cell order. Two
    /// sweeps of the same grid must agree on this digest bit-for-bit
    /// whatever their thread counts; CI diffs it between `--threads 1`
    /// and `--threads 4`.
    pub fn ledger_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for cell in &self.cells {
            let r = &cell.report;
            eat(cell.workload_seed);
            eat(cell.fault_index as u64);
            eat(cell.arq_index as u64);
            eat(cell.topology_index as u64);
            eat(cell.cost_per_request.map_or(u64::MAX, f64::to_bits));
            eat(r.counts.total());
            eat(r.counts.data_messages());
            eat(r.counts.control_messages());
            eat(r.counts.connections());
            eat(r.counts.allocations());
            eat(r.counts.deallocations());
            eat(r.data_messages);
            eat(r.control_messages);
            eat(r.connections);
            eat(r.retransmissions);
            eat(r.handoffs);
            eat(r.disconnects);
            eat(r.mc_crashes);
            eat(r.sc_outages);
            eat(r.duplicated_deliveries);
            eat(r.discarded_deliveries);
            eat(r.aborted_messages);
            eat(r.reconciliation_messages);
            eat(r.reconciliations);
            eat(r.queued_requests);
            eat(r.settled_retransmissions);
            eat(r.arq_acks);
            eat(r.retry_escalations);
            eat(r.shed_requests());
            eat(r.degraded_reads);
            eat(r.recoveries);
            eat(r.staleness_sum.to_bits());
            eat(r.recovery_time_sum.to_bits());
            eat(r.makespan.to_bits());
            eat(r.mean_read_latency.to_bits());
            eat(r.schedule.len() as u64);
            eat(r.migrations);
            eat(r.handoffs_committed);
            eat(r.handoffs_aborted);
            eat(r.handoff_messages);
            eat(r.settled_handoff_messages);
            eat(r.aborted_handoff_messages);
            eat(r.invalidation_messages);
            eat(r.invalidation_rounds);
            eat(r.replicas_invalidated);
            eat(r.stale_reads);
            eat(r.handoff_discards);
        }
        hash
    }

    /// One deterministic text line per cell — the human-diffable form of
    /// [`SweepReport::ledger_digest`] (cost printed as exact bits plus a
    /// rounded decimal).
    pub fn ledger_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cell in &self.cells {
            let cost_bits = cell.cost_per_request.map_or(u64::MAX, f64::to_bits);
            let cost = cell.cost_per_request.unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "{} theta={} model={} fault={} arq={} topo={} rep={} seed={:#018x} \
                 cost={cost:.6}({cost_bits:#018x}) data={} ctrl={} conn={} retx={} disc={} \
                 acks={} esc={} shed={} degr={} migr={} hcom={} habt={} hmsg={} inv={} stale={}",
                cell.policy,
                cell.theta,
                cell.model,
                cell.fault_index,
                cell.arq_index,
                cell.topology_index,
                cell.replication,
                cell.workload_seed,
                cell.report.data_messages,
                cell.report.control_messages,
                cell.report.connections,
                cell.report.retransmissions,
                cell.report.disconnects,
                cell.report.arq_acks,
                cell.report.retry_escalations,
                cell.report.shed_requests(),
                cell.report.degraded_reads,
                cell.report.migrations,
                cell.report.handoffs_committed,
                cell.report.handoffs_aborted,
                cell.report.handoff_messages,
                cell.report.invalidation_messages,
                cell.report.stale_reads,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid::new(0x5EED)
            .policies(vec![
                PolicySpec::St1,
                PolicySpec::SlidingWindow { k: 3 },
                PolicySpec::T2 { m: 2 },
            ])
            .and_then(|g| g.thetas(vec![0.2, 0.6]))
            .and_then(|g| g.models(vec![CostModel::Connection, CostModel::message(0.5)]))
            .and_then(|g| g.fault_plans(vec![None, Some(FaultPlan::new(0.05, 1.5, 0).unwrap())]))
            .and_then(|g| g.replications(2))
            .and_then(|g| g.requests(600))
            .unwrap()
    }

    #[test]
    fn derive_seed_is_stable_and_stream_separated() {
        // Golden values pin the derivation: changing it would silently
        // re-randomize every recorded sweep.
        let a = derive_seed(1, streams::WORKLOAD, 0);
        let b = derive_seed(1, streams::FAULT, 0);
        let c = derive_seed(1, streams::WORKLOAD, 1);
        let d = derive_seed(2, streams::WORKLOAD, 0);
        assert_eq!(a, derive_seed(1, streams::WORKLOAD, 0));
        assert!(a != b && a != c && a != d && b != c && b != d && c != d);
    }

    #[test]
    fn grid_counts() {
        let grid = small_grid();
        assert_eq!(grid.runs(), 3 * 2 * 2 * 2);
        assert_eq!(grid.cells(), grid.runs() * 2);
    }

    #[test]
    fn invalid_axes_are_typed_errors() {
        let grid = || SweepGrid::new(0);
        assert_eq!(
            grid().policies(vec![]).unwrap_err(),
            ConfigError::EmptyAxis { what: "policies" }
        );
        assert_eq!(
            grid()
                .policies(vec![PolicySpec::SlidingWindow { k: 2 }])
                .unwrap_err(),
            ConfigError::EvenWindow { k: 2 }
        );
        assert_eq!(
            grid().thetas(vec![0.2, 1.5]).unwrap_err(),
            ConfigError::Theta { value: 1.5 }
        );
        assert_eq!(
            grid().omegas(vec![-0.5]).unwrap_err(),
            ConfigError::Omega { value: -0.5 }
        );
        assert_eq!(
            grid().models(vec![]).unwrap_err(),
            ConfigError::EmptyAxis { what: "models" }
        );
        assert_eq!(
            grid().fault_plans(vec![]).unwrap_err(),
            ConfigError::EmptyAxis {
                what: "fault plans"
            }
        );
        assert_eq!(
            grid().arq_configs(vec![]).unwrap_err(),
            ConfigError::EmptyAxis {
                what: "ARQ configs"
            }
        );
        assert_eq!(
            grid().replications(0).unwrap_err(),
            ConfigError::ZeroCount {
                what: "replications"
            }
        );
        assert_eq!(
            grid().requests(0).unwrap_err(),
            ConfigError::ZeroCount { what: "requests" }
        );
        assert!(matches!(
            grid().latency(-1.0).unwrap_err(),
            ConfigError::Latency { .. }
        ));
    }

    #[test]
    fn policies_and_fault_plans_share_workload_seeds() {
        // Paired comparisons: the workload seed is a function of
        // (θ, replication) only, so cells that differ in policy or fault
        // plan replay the same arrival stream — and an inert fault plan is
        // indistinguishable from the fault-free baseline, counter for
        // counter.
        let report = small_grid().run_serial();
        let mut by_slot: std::collections::HashMap<(u64, usize), u64> =
            std::collections::HashMap::new();
        for cell in &report.cells {
            let slot = (cell.theta.to_bits(), cell.replication);
            let seed = *by_slot.entry(slot).or_insert(cell.workload_seed);
            assert_eq!(seed, cell.workload_seed, "slot {slot:?}");
        }
        assert_eq!(by_slot.len(), 2 * 2); // θ × replications

        let inert = FaultPlan::new(0.0, 1.0, 0).unwrap();
        let paired = SweepGrid::new(0xE17)
            .policies(vec![PolicySpec::SlidingWindow { k: 3 }])
            .and_then(|g| g.fault_plans(vec![None, Some(inert)]))
            .and_then(|g| g.requests(500))
            .unwrap()
            .run_serial();
        assert_eq!(
            paired.cells[0].report, paired.cells[1].report,
            "an inert plan must not perturb the paired baseline run"
        );
    }

    #[test]
    fn parallel_is_byte_identical_to_serial() {
        let grid = small_grid();
        let serial = grid.run_serial();
        for threads in [2, 3, 8] {
            for chunk in [0, 1, 5] {
                let parallel = grid.run(SweepOptions { threads, chunk });
                assert_eq!(serial, parallel, "threads={threads} chunk={chunk}");
                assert_eq!(serial.ledger_digest(), parallel.ledger_digest());
                assert_eq!(serial.ledger_lines(), parallel.ledger_lines());
            }
        }
    }

    #[test]
    fn omega_cells_share_their_run() {
        // The model axis is pricing-only: cells that differ only in ω must
        // carry identical simulation reports.
        let report = small_grid().run_serial();
        for pair in report.cells.chunks(2) {
            assert_eq!(pair[0].report, pair[1].report);
            assert!(pair[0].model != pair[1].model);
        }
    }

    fn arq_grid() -> SweepGrid {
        let lossy = ArqConfig::new(0.25, 0.5, 0)
            .and_then(|a| a.with_backoff(2.0, 0.25))
            .and_then(|a| a.with_retry_budget(6))
            .unwrap();
        SweepGrid::new(0xA6_0A)
            .policies(vec![PolicySpec::St1, PolicySpec::SlidingWindow { k: 3 }])
            .and_then(|g| g.thetas(vec![0.3]))
            .and_then(|g| g.arq_configs(vec![None, Some(lossy)]))
            .and_then(|g| g.replications(2))
            .and_then(|g| g.requests(500))
            .unwrap()
    }

    #[test]
    fn arq_axis_multiplies_runs_and_pairs_workloads() {
        let grid = arq_grid();
        // policies × θ × faults × ARQ configs × replications.
        #[allow(clippy::identity_op)]
        let expected_runs = 2 * 1 * 1 * 2 * 2;
        assert_eq!(grid.runs(), expected_runs);
        let report = grid.run_serial();
        // The transport axis is blind to the workload: paired cells replay
        // the same arrival stream, so the request schedule — which actions
        // serve which requests — is identical with and without ARQ; only
        // the wire traffic differs.
        for policy_index in 0..2 {
            for rep in 0..2 {
                let base = policy_index * 4 + rep;
                let bare = &report.cells[base];
                let arq = &report.cells[base + 2];
                assert_eq!((bare.arq_index, arq.arq_index), (0, 1));
                assert_eq!(bare.workload_seed, arq.workload_seed);
                assert_eq!(bare.report.schedule, arq.report.schedule);
                assert_eq!(bare.report.counts, arq.report.counts);
                assert!(arq.report.arq_acks > 0);
                assert_eq!(bare.report.arq_acks, 0);
            }
        }
        // Summary groups split by ARQ index and surface the new columns.
        assert_eq!(report.summary.entries.len(), 4);
        let lossy_entry = &report.summary.entries[1];
        assert_eq!(lossy_entry.arq_index, 1);
        assert!(lossy_entry.retransmissions > 0);
        assert!(lossy_entry.arq_acks > 0);
    }

    #[test]
    fn arq_cells_are_byte_identical_across_thread_counts() {
        // The E18 guarantee in miniature: a lossy-ARQ grid (timer events,
        // retransmissions, jitter draws) must still be byte-identical
        // between the serial path and any thread count.
        let grid = arq_grid();
        let serial = grid.run_serial();
        for threads in [2, 4] {
            let parallel = grid.run(SweepOptions { threads, chunk: 0 });
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(serial.ledger_digest(), parallel.ledger_digest());
            assert_eq!(serial.ledger_lines(), parallel.ledger_lines());
        }
    }

    #[test]
    fn arq_seeds_are_shared_across_policies_and_distinct_per_config() {
        let grid = arq_grid();
        // Runs: policy → θ → fault → arq → rep. Policy stride is 4.
        for run in 0..4 {
            assert_eq!(grid.arq_seed(run), grid.arq_seed(run + 4), "run {run}");
        }
        // Distinct ARQ index ⇒ distinct transport seed at equal slots.
        assert_ne!(grid.arq_seed(0), grid.arq_seed(2));
        // And the transport stream never collides with workload or fault.
        assert_ne!(grid.arq_seed(0), grid.workload_seed(0));
        assert_ne!(grid.arq_seed(0), grid.fault_seed(0));
    }

    #[test]
    fn parallel_map_orders_results() {
        let out = parallel_map(103, 7, 4, |i| i * i);
        assert_eq!(out, (0..103).map(|i| i * i).collect::<Vec<_>>());
        let out = parallel_map(5, 0, 0, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(parallel_map(0, 3, 1, |i| i).is_empty());
    }

    #[test]
    fn summary_merge_law_on_disjoint_shards() {
        // Two disjoint shards (different grid seeds, same shape) merge into
        // the union's counts; moments follow Chan's law.
        let shard = |seed| {
            SweepGrid::new(seed)
                .policies(vec![PolicySpec::St2])
                .and_then(|g| g.thetas(vec![0.4]))
                .and_then(|g| g.replications(3))
                .and_then(|g| g.requests(400))
                .unwrap()
                .run_serial()
        };
        let a = shard(1).summary;
        let b = shard(2).summary;
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.entries.len(), 1);
        let entry = &merged.entries[0];
        assert_eq!(entry.cost_per_request.n, 6);
        assert_eq!(entry.requests, 6 * 400);
        // Chan's merge equals the pooled mean up to rounding.
        let pooled = (a.entries[0].cost_per_request.mean * 3.0
            + b.entries[0].cost_per_request.mean * 3.0)
            / 6.0;
        assert!((entry.cost_per_request.mean - pooled).abs() < 1e-12);
        // Shape mismatch is a None, not a panic.
        let other_shape = shard(1);
        let wide = SweepGrid::new(9)
            .policies(vec![PolicySpec::St1, PolicySpec::St2])
            .unwrap()
            .run_serial();
        assert!(other_shape.summary.merge(&wide.summary).is_none());
    }

    #[test]
    fn competitive_ratio_tracks_the_analytic_cost() {
        // Long fault-free runs must land near ratio 1 against Eq. 2–8.
        let report = SweepGrid::new(77)
            .policies(vec![PolicySpec::SlidingWindow { k: 5 }])
            .and_then(|g| g.thetas(vec![0.3]))
            .and_then(|g| g.replications(3))
            .and_then(|g| g.requests(20_000))
            .unwrap()
            .run_serial();
        let entry = &report.summary.entries[0];
        assert_eq!(entry.competitive_ratio.n, 3);
        assert!(
            (entry.competitive_ratio.mean - 1.0).abs() < 0.05,
            "ratio {}",
            entry.competitive_ratio.mean
        );
    }

    fn topology_grid() -> SweepGrid {
        let mobile = TopologyConfig::new(3, 0.4, 0.6, 0)
            .unwrap()
            .with_loss(0.2)
            .unwrap();
        SweepGrid::new(0x70_70)
            .policies(vec![PolicySpec::St1, PolicySpec::SlidingWindow { k: 3 }])
            .and_then(|g| g.thetas(vec![0.3]))
            .and_then(|g| g.topology_configs(vec![None, Some(mobile)]))
            .and_then(|g| g.replications(2))
            .and_then(|g| g.requests(500))
            .unwrap()
    }

    #[test]
    fn topology_axis_multiplies_runs_and_pairs_workloads() {
        let grid = topology_grid();
        // policies × θ × faults × ARQ × topologies × replications.
        #[allow(clippy::identity_op)]
        let expected_runs = 2 * 1 * 1 * 1 * 2 * 2;
        assert_eq!(grid.runs(), expected_runs);
        assert!(grid.topology_configs(vec![]).is_err());
        let grid = topology_grid();
        let report = grid.run_serial();
        // The topology axis is blind to the workload: paired cells replay
        // the same arrival stream; only mobility and its handoff traffic
        // differ.
        for policy_index in 0..2 {
            for rep in 0..2 {
                let base = policy_index * 4 + rep;
                let single = &report.cells[base];
                let multi = &report.cells[base + 2];
                assert_eq!((single.topology_index, multi.topology_index), (0, 1));
                assert_eq!(single.workload_seed, multi.workload_seed);
                assert_eq!(single.report.migrations, 0);
                assert!(multi.report.migrations > 0);
                assert!(multi.report.handoffs_committed > 0);
            }
        }
        // Summary groups split by topology index and surface the new
        // columns.
        assert_eq!(report.summary.entries.len(), 4);
        let mobile_entry = &report.summary.entries[1];
        assert_eq!(mobile_entry.topology_index, 1);
        assert!(mobile_entry.migrations > 0);
        assert!(mobile_entry.handoff_messages > 0);
        assert_eq!(report.summary.entries[0].handoff_messages, 0);
    }

    #[test]
    fn topology_cells_are_byte_identical_across_thread_counts() {
        // The E19 guarantee in miniature: a multi-cell grid with a lossy
        // backbone must stay byte-identical between the serial path and
        // any thread count.
        let grid = topology_grid();
        let serial = grid.run_serial();
        for threads in [2, 4] {
            let parallel = grid.run(SweepOptions { threads, chunk: 0 });
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(serial.ledger_digest(), parallel.ledger_digest());
            assert_eq!(serial.ledger_lines(), parallel.ledger_lines());
        }
    }

    #[test]
    fn inert_topology_cell_matches_the_none_cell() {
        // An inert mobility plan (zero migrations) must reproduce the
        // single-cell run exactly, counter for counter — the topology
        // layer is strictly opt-in.
        let inert = TopologyConfig::new(4, 0.0, 1.0, 7).unwrap();
        let report = SweepGrid::new(0xE19)
            .policies(vec![PolicySpec::SlidingWindow { k: 5 }])
            .and_then(|g| g.topology_configs(vec![None, Some(inert)]))
            .and_then(|g| g.requests(500))
            .unwrap()
            .run_serial();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(
            report.cells[0].report, report.cells[1].report,
            "an inert topology must not perturb the paired single-cell run"
        );
        assert_eq!(
            report.cells[0].cost_per_request,
            report.cells[1].cost_per_request
        );
    }

    #[test]
    fn simultaneous_fault_resolution_order_is_pinned() {
        // Regression pin for the documented simultaneous-fault tie-break:
        // when an SC outage lands during an in-flight exchange at the same
        // instant as MC-crash bookkeeping, the network/SC side resolves
        // first (the outage tears the exchange off the wire) and only then
        // is the MC-side crash state applied — ordered by the event
        // queue's (time, actor-rank, seq) key. Any change to that order
        // shifts this ledger digest.
        let plan = FaultPlan::new(0.35, 1.2, 0)
            .and_then(|p| p.with_crashes(0.5, 0.5))
            .and_then(|p| p.with_sc_outages(0.5))
            .and_then(|p| p.with_duplication(0.2, 0.2))
            .unwrap();
        let report = SweepGrid::new(0xFA_01)
            .policies(vec![PolicySpec::SlidingWindow { k: 3 }, PolicySpec::St2])
            .and_then(|g| g.thetas(vec![0.4]))
            .and_then(|g| g.fault_plans(vec![Some(plan)]))
            .and_then(|g| g.replications(2))
            .and_then(|g| g.requests(1_500))
            .unwrap()
            .run_serial();
        let crashed: u64 = report.cells.iter().map(|c| c.report.mc_crashes).sum();
        let outages: u64 = report.cells.iter().map(|c| c.report.sc_outages).sum();
        assert!(crashed > 0 && outages > 0, "plan must exercise both faults");
        assert_eq!(report.ledger_digest(), 0x0ff8_4e7e_ee45_a9f4);
    }

    #[test]
    fn moments_match_the_two_pass_formulas() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let mut m = Moments::default();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((m.mean - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert!(m.stderr() > 0.0);
        assert_eq!(Moments::default().variance(), 0.0);
        assert_eq!(Moments::default().stderr(), 0.0);
    }
}
