//! The §4 protocol as an explicit transition relation, separated from the
//! discrete-event loop.
//!
//! [`ProtocolState`] bundles the two node state machines with the messages
//! currently on the wire, the request being served, and the action ledger.
//! Two drivers execute it:
//!
//! * the discrete-event loop in [`crate::sim`] steps it in timestamp order,
//!   adding clocks, latency, queueing and per-transmission billing on top;
//! * the bounded model checker in `mdr-verify` steps it over *every*
//!   interleaving of request arrivals and message deliveries, checking the
//!   protocol invariants (single window owner, replica agreement, ledger
//!   equality with the reference policy) in each reached state.
//!
//! Keeping the transition relation free of clocks and billing is what makes
//! the two drivers provably execute the same protocol: a transition is
//! [`submit`](ProtocolState::submit) (a request begins service) or
//! [`deliver`](ProtocolState::deliver) (an in-flight message arrives), and
//! nothing else changes protocol state.
//!
//! Because the paper serializes relevant requests (§3), at most one exchange
//! is in progress at a time and the wire holds at most one envelope; the
//! state nevertheless models the wire as a list so the checker can also
//! explore fault injections ([`tamper_in_flight`](ProtocolState::tamper_in_flight),
//! [`drop_in_flight`](ProtocolState::drop_in_flight)).

use crate::nodes::{MobileNode, StationaryNode};
use crate::wire::{Endpoint, WireMessage};
use mdr_core::{Action, ActionCounts, PolicySpec, Request};

/// A message in flight together with its destination endpoint.
///
/// Every envelope is stamped with the link **epoch** it was sent under and
/// a monotone **sequence number** (fault-model extension, `docs/faults.md`):
/// [`ProtocolState::receive`] discards deliveries from a previous epoch and
/// duplicate or stale-reordered deliveries, which is what keeps the
/// protocol correct when the network duplicates or delays envelopes — and
/// what makes the ARQ transport's retransmissions idempotent (a retransmit
/// whose original already arrived is discarded unbilled by the watermark).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// The endpoint the message is addressed to.
    pub to: Endpoint,
    /// The message payload.
    pub message: WireMessage,
    /// The link epoch the envelope was sent under.
    pub epoch: u64,
    /// Monotone per-state sequence number (dup/reorder detection).
    pub seq: u64,
}

/// The observable effect of one protocol transition.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The request being served completed; the action is the ledger entry
    /// just recorded in [`ProtocolState::counts`].
    Completed(Action),
    /// A message was placed on the wire (a copy of this envelope is now
    /// queued in [`ProtocolState::wire`]); the exchange continues.
    Sent(Envelope),
    /// The reconnection handshake completed: replica and window ownership
    /// were re-validated on both sides. No ledger entry is recorded — the
    /// handshake serves no request.
    Reconciled,
}

/// A snapshot of both node state machines, taken when a request begins
/// service so a faulted exchange can be rolled back and retried.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Checkpoint {
    sc: StationaryNode,
    mc: MobileNode,
}

/// The complete protocol configuration: both endpoints, the wire, the
/// request in service, and the action ledger.
///
/// Equality and hashing cover the full configuration, which is what lets
/// the model checker deduplicate states across interleavings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProtocolState {
    policy: PolicySpec,
    sc: StationaryNode,
    mc: MobileNode,
    wire: Vec<Envelope>,
    serving: Option<Request>,
    counts: ActionCounts,
    /// Current link epoch; bumped by [`reconnect`](Self::reconnect).
    epoch: u64,
    /// Next envelope sequence number.
    next_seq: u64,
    /// Highest sequence number delivered to the MC / the SC.
    delivered_mc: u64,
    delivered_sc: u64,
    /// Rollback snapshot for the exchange in progress.
    checkpoint: Option<Checkpoint>,
    /// Whether a reconnection handshake is in progress.
    recovering: bool,
}

impl ProtocolState {
    /// The initial protocol configuration for `policy`: both nodes in their
    /// cold-start state, nothing on the wire, an empty ledger.
    pub fn new(policy: PolicySpec) -> Self {
        ProtocolState {
            policy,
            sc: StationaryNode::new(policy),
            mc: MobileNode::new(policy),
            wire: Vec::new(),
            serving: None,
            counts: ActionCounts::default(),
            epoch: 0,
            next_seq: 1,
            delivered_mc: 0,
            delivered_sc: 0,
            checkpoint: None,
            recovering: false,
        }
    }

    /// The policy both nodes run.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// Whether no exchange is in progress (a new request may be submitted).
    pub fn idle(&self) -> bool {
        self.serving.is_none()
    }

    /// The request currently being served remotely, if any.
    pub fn serving(&self) -> Option<Request> {
        self.serving
    }

    /// The messages currently on the wire, in send order.
    pub fn wire(&self) -> &[Envelope] {
        &self.wire
    }

    /// The stationary node's state.
    pub fn sc(&self) -> &StationaryNode {
        &self.sc
    }

    /// The mobile node's state.
    pub fn mc(&self) -> &MobileNode {
        &self.mc
    }

    /// The action ledger accumulated so far.
    pub fn counts(&self) -> ActionCounts {
        self.counts
    }

    /// The current link epoch (bumped at every
    /// [`reconnect`](Self::reconnect)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a reconnection handshake is in progress.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// The replica state a handoff's `StateTransfer` leg ships to the
    /// target cell (mobility extension; `docs/topology.md`): the primary's
    /// version, the SC's replication commitment (ST2 replica state) and
    /// which side holds the §4 window (T1/T2 streaks live on whichever
    /// side is in charge).
    pub fn handoff_snapshot(&self) -> crate::topology::HandoffSnapshot {
        crate::topology::HandoffSnapshot {
            version: self.sc.version(),
            mc_has_copy: self.sc.mc_has_copy(),
            sc_in_charge: self.sc.in_charge(),
            mc_in_charge: self.mc.in_charge(),
        }
    }

    fn complete(&mut self, action: Action) -> StepOutcome {
        self.counts.record(action);
        self.serving = None;
        self.checkpoint = None;
        StepOutcome::Completed(action)
    }

    fn send(&mut self, to: Endpoint, message: WireMessage) -> StepOutcome {
        let envelope = Envelope {
            to,
            message,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.wire.push(envelope.clone());
        StepOutcome::Sent(envelope)
    }

    /// Begins serving one relevant request. Local operations (a read hitting
    /// the replica, a silent write) complete inline; remote ones put a
    /// message on the wire and leave the state mid-exchange until
    /// [`deliver`](Self::deliver) completes it.
    ///
    /// # Panics
    ///
    /// Panics if an exchange is already in progress (requests are
    /// serialized, §3), or if a local read observes a stale replica.
    pub fn submit(&mut self, request: Request) -> StepOutcome {
        assert!(
            self.serving.is_none(),
            "request submitted while an exchange is in flight (requests are serialized)"
        );
        assert!(
            !self.recovering,
            "request submitted while the reconnection handshake is in progress"
        );
        // Snapshot both nodes so a faulted exchange can be rolled back to
        // its submission state and retried (`abort_exchange`). Only
        // exchanges that put a message on the wire can be aborted, so the
        // snapshot is taken lazily on exactly those paths — an inline
        // completion (local read, silent write) never pays for the two
        // node clones it would immediately drop. A read goes remote iff
        // the MC lacks a copy; a write propagates iff the MC holds one —
        // both conditions are known *before* the nodes mutate, so the
        // snapshot still captures the pristine submission state.
        match request {
            Request::Read => {
                if self.mc.has_copy() {
                    let version = self.mc.handle_local_read();
                    assert_eq!(
                        version,
                        self.sc.version(),
                        "stale local read: replica version {version} behind primary {}",
                        self.sc.version()
                    );
                    self.complete(Action::LocalRead)
                } else {
                    self.checkpoint = Some(Checkpoint {
                        sc: self.sc.clone(),
                        mc: self.mc.clone(),
                    });
                    self.serving = Some(Request::Read);
                    self.send(Endpoint::Stationary, WireMessage::read_request())
                }
            }
            Request::Write => {
                if self.sc.mc_has_copy() {
                    self.checkpoint = Some(Checkpoint {
                        sc: self.sc.clone(),
                        mc: self.mc.clone(),
                    });
                }
                match self.sc.handle_local_write() {
                    None => self.complete(Action::SilentWrite),
                    Some(message) => {
                        self.serving = Some(Request::Write);
                        self.send(Endpoint::Mobile, message)
                    }
                }
            }
        }
    }

    /// Delivers the in-flight envelope at `index`, advancing the exchange:
    /// either a response goes back on the wire or the request completes.
    ///
    /// # Panics
    ///
    /// Panics if no exchange is in flight, if `index` is out of range, or if
    /// the delivered message is impossible at its destination (protocol
    /// corruption).
    pub fn deliver(&mut self, index: usize) -> StepOutcome {
        assert!(
            self.serving.is_some() || self.recovering,
            "delivery without an exchange or handshake in flight"
        );
        let Envelope {
            to, message, seq, ..
        } = self.wire.remove(index);
        match to {
            Endpoint::Mobile => self.delivered_mc = self.delivered_mc.max(seq),
            Endpoint::Stationary => self.delivered_sc = self.delivered_sc.max(seq),
        }
        match (to, message) {
            (Endpoint::Stationary, WireMessage::ReadRequest) => {
                let response = self.sc.handle_read_request();
                self.send(Endpoint::Mobile, response)
            }
            (
                Endpoint::Mobile,
                WireMessage::DataResponse {
                    version,
                    allocate,
                    window,
                },
            ) => {
                let got = self.mc.handle_data_response(version, allocate, window);
                assert_eq!(
                    got,
                    self.sc.version(),
                    "remote read returned a stale version"
                );
                self.complete(Action::RemoteRead {
                    allocates: allocate,
                })
            }
            (Endpoint::Mobile, WireMessage::WritePropagation { version }) => {
                match self.mc.handle_write_propagation(version) {
                    Some(delete) => self.send(Endpoint::Stationary, delete),
                    None => self.complete(Action::PropagatedWrite { deallocates: false }),
                }
            }
            (Endpoint::Stationary, WireMessage::DeleteRequest { window }) => {
                self.sc.handle_delete_request(window);
                self.complete(Action::PropagatedWrite { deallocates: true })
            }
            (Endpoint::Mobile, WireMessage::DeleteRequest { .. }) => {
                self.mc.handle_delete_request();
                self.complete(Action::DeleteRequestWrite)
            }
            (Endpoint::Stationary, WireMessage::Reconnect { cached_version, .. }) => {
                let refresh = self.sc.handle_reconnect(cached_version);
                let epoch = self.epoch;
                self.send(Endpoint::Mobile, WireMessage::reconnect_ack(epoch, refresh))
            }
            (Endpoint::Mobile, WireMessage::ReconnectAck { refresh, .. }) => {
                self.mc.handle_reconnect_ack(refresh);
                self.recovering = false;
                StepOutcome::Reconciled
            }
            (to, message) => unreachable!("{} delivered to {to:?}", message.kind()),
        }
    }

    /// Delivers `envelope` if it is still current, applying the epoch and
    /// sequence guards of the reconnection protocol: a delivery from a
    /// previous link epoch, a duplicate, or a reordered stale copy returns
    /// `None` and leaves the state untouched (fault-model extension,
    /// `docs/faults.md`). This is the entry point the discrete-event
    /// simulator uses, since faults can leave ghost deliveries in its event
    /// queue.
    pub fn receive(&mut self, envelope: &Envelope) -> Option<StepOutcome> {
        if envelope.epoch != self.epoch {
            return None;
        }
        let watermark = match envelope.to {
            Endpoint::Mobile => self.delivered_mc,
            Endpoint::Stationary => self.delivered_sc,
        };
        if envelope.seq <= watermark {
            return None; // duplicate, or reordered behind a newer delivery
        }
        let index = self.wire.iter().position(|e| e == envelope)?;
        Some(self.deliver(index))
    }

    /// Aborts the exchange in progress — the timeout path for an envelope
    /// that will never arrive (an unrecovered loss or a link failure): both
    /// nodes roll back to the checkpoint taken at submission, the wire is
    /// cleared, and the request is returned so the driver can retry it.
    /// Returns `None` when no exchange is in progress.
    ///
    /// No ledger entry is recorded: the aborted attempt performed no
    /// action, and the retry will bill its own messages.
    pub fn abort_exchange(&mut self) -> Option<Request> {
        let request = self.serving.take()?;
        if let Some(Checkpoint { sc, mc }) = self.checkpoint.take() {
            self.sc = sc;
            self.mc = mc;
        }
        self.wire.clear();
        Some(request)
    }

    /// Severs the link (fault-model extension): every in-flight envelope is
    /// destroyed and a mid-exchange request is rolled back via
    /// [`abort_exchange`](Self::abort_exchange) and returned for retry. A
    /// handshake in progress stays pending (`recovering` remains set) and
    /// must be restarted after the next [`reconnect`](Self::reconnect).
    pub fn disconnect(&mut self) -> Option<Request> {
        let aborted = self.abort_exchange();
        self.wire.clear();
        aborted
    }

    /// Re-establishes the link under a new epoch: deliveries stamped with
    /// an older epoch are discarded by [`receive`](Self::receive) from now
    /// on.
    pub fn reconnect(&mut self) {
        self.epoch += 1;
    }

    /// Starts the reconnection handshake after an MC crash: the MC (having
    /// lost its volatile state if `volatile`) announces the replica state
    /// that survived, and the SC will re-validate it against its own
    /// commitment. The returned envelope carries the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if an exchange is in progress (the driver must abort or
    /// suspend it first).
    pub fn begin_reconciliation(&mut self, volatile: bool) -> StepOutcome {
        assert!(
            self.serving.is_none(),
            "reconciliation started mid-exchange"
        );
        self.recovering = true;
        if volatile {
            self.mc.lose_volatile_state();
        }
        let epoch = self.epoch;
        let cached = self.mc.cached_version();
        self.send(Endpoint::Stationary, WireMessage::reconnect(epoch, cached))
    }

    /// Mutates the in-flight envelope at `index` — **verification support**:
    /// the model checker in `mdr-verify` uses this to seed deliberate
    /// protocol mutations (e.g. stripping the §4 window hand-off from an
    /// allocating response) and prove that the invariant suite catches them.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tamper_in_flight(&mut self, index: usize, tamper: impl FnOnce(&mut Envelope)) {
        tamper(&mut self.wire[index]);
    }

    /// Discards the in-flight envelope at `index` without delivering it —
    /// verification support for modelling an *unrecovered* message loss
    /// (the simulator's ARQ transport normally repairs loss by timed
    /// retransmission, see `docs/faults.md`). The exchange is left
    /// dangling, which the checker's deadlock invariant must detect.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn drop_in_flight(&mut self, index: usize) -> Envelope {
        self.wire.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_to_completion(state: &mut ProtocolState, request: Request) -> Action {
        let mut outcome = state.submit(request);
        loop {
            match outcome {
                StepOutcome::Completed(action) => return action,
                StepOutcome::Sent(_) => outcome = state.deliver(0),
                StepOutcome::Reconciled => unreachable!("no handshake in progress"),
            }
        }
    }

    #[test]
    fn transition_relation_matches_the_reference_policy() {
        use mdr_core::Schedule;
        let schedule: Schedule = "rrrwwwrrwwrw".parse().unwrap();
        for spec in PolicySpec::roster(&[1, 3, 5], &[1, 2]) {
            let mut state = ProtocolState::new(spec);
            let mut oracle = spec.build();
            for req in &schedule {
                let action = drive_to_completion(&mut state, req);
                assert_eq!(action, oracle.on_request(req), "{spec}");
                assert_eq!(state.mc().has_copy(), oracle.has_copy(), "{spec}");
                assert!(state.idle());
                assert!(state.wire().is_empty());
            }
        }
    }

    #[test]
    fn ledger_accumulates_completed_actions() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        drive_to_completion(&mut state, Request::Read);
        drive_to_completion(&mut state, Request::Write);
        assert_eq!(state.counts().remote_reads, 1);
        assert_eq!(state.counts().silent_writes, 1);
        assert_eq!(state.counts().total(), 2);
    }

    #[test]
    fn remote_read_is_a_two_delivery_exchange() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let outcome = state.submit(Request::Read);
        assert!(matches!(outcome, StepOutcome::Sent(ref e) if e.to == Endpoint::Stationary));
        assert_eq!(state.serving(), Some(Request::Read));
        let outcome = state.deliver(0);
        assert!(matches!(outcome, StepOutcome::Sent(ref e) if e.to == Endpoint::Mobile));
        let outcome = state.deliver(0);
        assert!(matches!(
            outcome,
            StepOutcome::Completed(Action::RemoteRead { allocates: false })
        ));
        assert!(state.idle());
    }

    #[test]
    #[should_panic(expected = "serialized")]
    fn concurrent_submission_is_rejected() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let _ = state.submit(Request::Read);
        let _ = state.submit(Request::Read);
    }

    #[test]
    #[should_panic(expected = "without an exchange")]
    fn delivery_without_an_exchange_is_rejected() {
        let mut state = ProtocolState::new(PolicySpec::St2);
        let _ = state.deliver(0);
    }

    #[test]
    fn dropping_an_envelope_leaves_the_exchange_dangling() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let _ = state.submit(Request::Read);
        let dropped = state.drop_in_flight(0);
        assert_eq!(dropped.message, WireMessage::read_request());
        assert!(!state.idle());
        assert!(state.wire().is_empty());
    }

    #[test]
    fn a_dangling_exchange_can_be_aborted_and_retried() {
        // St2 write propagation: submission already bumped the primary
        // version, so the abort must roll the SC back before the retry.
        let mut state = ProtocolState::new(PolicySpec::St2);
        let _ = state.submit(Request::Write);
        assert_eq!(state.sc().version(), 1);
        let _ = state.drop_in_flight(0);
        assert!(!state.idle(), "exchange dangles after the drop");
        assert_eq!(state.abort_exchange(), Some(Request::Write));
        assert!(state.idle());
        assert_eq!(state.sc().version(), 0, "rolled back to submission state");
        assert_eq!(
            drive_to_completion(&mut state, Request::Write),
            Action::PropagatedWrite { deallocates: false }
        );
        assert_eq!(state.mc().cached_version(), Some(1));
        assert_eq!(
            state.counts().total(),
            1,
            "the aborted attempt left no ledger entry"
        );
    }

    #[test]
    fn abort_without_an_exchange_is_a_no_op() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        assert_eq!(state.abort_exchange(), None);
        assert_eq!(state, ProtocolState::new(PolicySpec::St1));
    }

    #[test]
    fn duplicate_and_stale_deliveries_are_discarded() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let StepOutcome::Sent(request) = state.submit(Request::Read) else {
            panic!("remote read must go on the wire")
        };
        let Some(StepOutcome::Sent(response)) = state.receive(&request) else {
            panic!("the SC must answer")
        };
        // A duplicate of the consumed request is discarded by the watermark.
        assert_eq!(state.receive(&request), None);
        assert!(matches!(
            state.receive(&response),
            Some(StepOutcome::Completed(_))
        ));
        // Late duplicates after completion are discarded too.
        assert_eq!(state.receive(&response), None);
        assert_eq!(state.receive(&request), None);
        assert_eq!(state.counts().total(), 1);
    }

    #[test]
    fn deliveries_from_an_old_epoch_are_discarded() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let StepOutcome::Sent(request) = state.submit(Request::Read) else {
            panic!("remote read must go on the wire")
        };
        assert_eq!(state.disconnect(), Some(Request::Read));
        state.reconnect();
        // The pre-disconnection envelope arrives after the epoch bump.
        assert_eq!(state.receive(&request), None);
        assert!(state.idle() && state.wire().is_empty());
    }

    #[test]
    fn volatile_crash_reconciliation_hands_the_window_back() {
        let mut state = ProtocolState::new(PolicySpec::SlidingWindow { k: 3 });
        drive_to_completion(&mut state, Request::Read);
        drive_to_completion(&mut state, Request::Read); // allocates
        assert!(state.mc().has_copy() && state.mc().in_charge());

        assert_eq!(state.disconnect(), None);
        state.reconnect();
        let StepOutcome::Sent(reconnect) = state.begin_reconciliation(true) else {
            panic!("the handshake starts with a message")
        };
        assert!(state.recovering());
        assert!(!state.mc().has_copy(), "volatile state lost");
        let Some(StepOutcome::Sent(ack)) = state.receive(&reconnect) else {
            panic!("the SC must acknowledge")
        };
        assert!(!state.sc().mc_has_copy(), "commitment retracted");
        assert!(state.sc().in_charge(), "window handed back to the SC");
        assert_eq!(state.receive(&ack), Some(StepOutcome::Reconciled));
        assert!(!state.recovering());
        // The protocol now behaves exactly like a cold-started SW3 whose
        // abstract policy was told about the loss.
        let mut oracle = PolicySpec::SlidingWindow { k: 3 }.build();
        oracle.on_request(Request::Read);
        oracle.on_request(Request::Read);
        oracle.on_replica_lost();
        assert_eq!(
            drive_to_completion(&mut state, Request::Read),
            oracle.on_request(Request::Read)
        );
        assert_eq!(state.mc().has_copy(), oracle.has_copy());
    }

    #[test]
    fn st2_reconciliation_refreshes_the_replica() {
        let mut state = ProtocolState::new(PolicySpec::St2);
        drive_to_completion(&mut state, Request::Write);
        assert_eq!(state.mc().cached_version(), Some(1));
        state.disconnect();
        state.reconnect();
        let StepOutcome::Sent(reconnect) = state.begin_reconciliation(true) else {
            panic!("the handshake starts with a message")
        };
        let Some(StepOutcome::Sent(ack)) = state.receive(&reconnect) else {
            panic!("the SC must acknowledge")
        };
        assert!(
            matches!(
                ack.message,
                WireMessage::ReconnectAck {
                    refresh: Some(1),
                    ..
                }
            ),
            "ST2 recovery re-ships the item: {ack:?}"
        );
        assert_eq!(state.receive(&ack), Some(StepOutcome::Reconciled));
        assert_eq!(state.mc().cached_version(), Some(1));
        assert!(state.sc().mc_has_copy());
    }

    #[test]
    fn stable_crash_reconciliation_preserves_ownership() {
        let mut state = ProtocolState::new(PolicySpec::SlidingWindow { k: 3 });
        drive_to_completion(&mut state, Request::Read);
        drive_to_completion(&mut state, Request::Read);
        let before_mc = state.mc().clone();
        state.disconnect();
        state.reconnect();
        let StepOutcome::Sent(reconnect) = state.begin_reconciliation(false) else {
            panic!("the handshake starts with a message")
        };
        let Some(StepOutcome::Sent(ack)) = state.receive(&reconnect) else {
            panic!("the SC must acknowledge")
        };
        assert_eq!(state.receive(&ack), Some(StepOutcome::Reconciled));
        assert_eq!(*state.mc(), before_mc, "stable replica survives intact");
        assert!(state.mc().in_charge());
    }

    #[test]
    fn equal_histories_produce_equal_states() {
        let a = {
            let mut s = ProtocolState::new(PolicySpec::SlidingWindow { k: 3 });
            drive_to_completion(&mut s, Request::Read);
            drive_to_completion(&mut s, Request::Read);
            s
        };
        let b = {
            let mut s = ProtocolState::new(PolicySpec::SlidingWindow { k: 3 });
            drive_to_completion(&mut s, Request::Read);
            drive_to_completion(&mut s, Request::Read);
            s
        };
        assert_eq!(a, b);
    }

    #[test]
    fn reconnect_bumps_the_epoch_every_time() {
        // The epoch is the fence that kills pre-outage ghost deliveries;
        // a reconnect that re-used the old epoch would let them through.
        let mut state = ProtocolState::new(PolicySpec::St1);
        let before = state.epoch();
        state.reconnect();
        assert_eq!(state.epoch(), before + 1);
        state.reconnect();
        assert_eq!(state.epoch(), before + 2);
    }
}
