//! The §4 protocol as an explicit transition relation, separated from the
//! discrete-event loop.
//!
//! [`ProtocolState`] bundles the two node state machines with the messages
//! currently on the wire, the request being served, and the action ledger.
//! Two drivers execute it:
//!
//! * the discrete-event loop in [`crate::sim`] steps it in timestamp order,
//!   adding clocks, latency, queueing and per-transmission billing on top;
//! * the bounded model checker in `mdr-verify` steps it over *every*
//!   interleaving of request arrivals and message deliveries, checking the
//!   protocol invariants (single window owner, replica agreement, ledger
//!   equality with the reference policy) in each reached state.
//!
//! Keeping the transition relation free of clocks and billing is what makes
//! the two drivers provably execute the same protocol: a transition is
//! [`submit`](ProtocolState::submit) (a request begins service) or
//! [`deliver`](ProtocolState::deliver) (an in-flight message arrives), and
//! nothing else changes protocol state.
//!
//! Because the paper serializes relevant requests (§3), at most one exchange
//! is in progress at a time and the wire holds at most one envelope; the
//! state nevertheless models the wire as a list so the checker can also
//! explore fault injections ([`tamper_in_flight`](ProtocolState::tamper_in_flight),
//! [`drop_in_flight`](ProtocolState::drop_in_flight)).

use crate::nodes::{MobileNode, StationaryNode};
use crate::wire::{Endpoint, WireMessage};
use mdr_core::{Action, ActionCounts, PolicySpec, Request};

/// A message in flight together with its destination endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// The endpoint the message is addressed to.
    pub to: Endpoint,
    /// The message payload.
    pub message: WireMessage,
}

/// The observable effect of one protocol transition.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The request being served completed; the action is the ledger entry
    /// just recorded in [`ProtocolState::counts`].
    Completed(Action),
    /// A message was placed on the wire (a copy of this envelope is now
    /// queued in [`ProtocolState::wire`]); the exchange continues.
    Sent(Envelope),
}

/// The complete protocol configuration: both endpoints, the wire, the
/// request in service, and the action ledger.
///
/// Equality and hashing cover the full configuration, which is what lets
/// the model checker deduplicate states across interleavings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProtocolState {
    policy: PolicySpec,
    sc: StationaryNode,
    mc: MobileNode,
    wire: Vec<Envelope>,
    serving: Option<Request>,
    counts: ActionCounts,
}

impl ProtocolState {
    /// The initial protocol configuration for `policy`: both nodes in their
    /// cold-start state, nothing on the wire, an empty ledger.
    pub fn new(policy: PolicySpec) -> Self {
        ProtocolState {
            policy,
            sc: StationaryNode::new(policy),
            mc: MobileNode::new(policy),
            wire: Vec::new(),
            serving: None,
            counts: ActionCounts::default(),
        }
    }

    /// The policy both nodes run.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// Whether no exchange is in progress (a new request may be submitted).
    pub fn idle(&self) -> bool {
        self.serving.is_none()
    }

    /// The request currently being served remotely, if any.
    pub fn serving(&self) -> Option<Request> {
        self.serving
    }

    /// The messages currently on the wire, in send order.
    pub fn wire(&self) -> &[Envelope] {
        &self.wire
    }

    /// The stationary node's state.
    pub fn sc(&self) -> &StationaryNode {
        &self.sc
    }

    /// The mobile node's state.
    pub fn mc(&self) -> &MobileNode {
        &self.mc
    }

    /// The action ledger accumulated so far.
    pub fn counts(&self) -> ActionCounts {
        self.counts
    }

    fn complete(&mut self, action: Action) -> StepOutcome {
        self.counts.record(action);
        self.serving = None;
        StepOutcome::Completed(action)
    }

    fn send(&mut self, to: Endpoint, message: WireMessage) -> StepOutcome {
        let envelope = Envelope { to, message };
        self.wire.push(envelope.clone());
        StepOutcome::Sent(envelope)
    }

    /// Begins serving one relevant request. Local operations (a read hitting
    /// the replica, a silent write) complete inline; remote ones put a
    /// message on the wire and leave the state mid-exchange until
    /// [`deliver`](Self::deliver) completes it.
    ///
    /// # Panics
    ///
    /// Panics if an exchange is already in progress (requests are
    /// serialized, §3), or if a local read observes a stale replica.
    pub fn submit(&mut self, request: Request) -> StepOutcome {
        assert!(
            self.serving.is_none(),
            "request submitted while an exchange is in flight (requests are serialized)"
        );
        match request {
            Request::Read => {
                if self.mc.has_copy() {
                    let version = self.mc.handle_local_read();
                    assert_eq!(
                        version,
                        self.sc.version(),
                        "stale local read: replica version {version} behind primary {}",
                        self.sc.version()
                    );
                    self.complete(Action::LocalRead)
                } else {
                    self.serving = Some(Request::Read);
                    self.send(Endpoint::Stationary, WireMessage::read_request())
                }
            }
            Request::Write => match self.sc.handle_local_write() {
                None => self.complete(Action::SilentWrite),
                Some(message) => {
                    self.serving = Some(Request::Write);
                    self.send(Endpoint::Mobile, message)
                }
            },
        }
    }

    /// Delivers the in-flight envelope at `index`, advancing the exchange:
    /// either a response goes back on the wire or the request completes.
    ///
    /// # Panics
    ///
    /// Panics if no exchange is in flight, if `index` is out of range, or if
    /// the delivered message is impossible at its destination (protocol
    /// corruption).
    pub fn deliver(&mut self, index: usize) -> StepOutcome {
        assert!(
            self.serving.is_some(),
            "delivery without an exchange in flight"
        );
        let Envelope { to, message } = self.wire.remove(index);
        match (to, message) {
            (Endpoint::Stationary, WireMessage::ReadRequest) => {
                let response = self.sc.handle_read_request();
                self.send(Endpoint::Mobile, response)
            }
            (
                Endpoint::Mobile,
                WireMessage::DataResponse {
                    version,
                    allocate,
                    window,
                },
            ) => {
                let got = self.mc.handle_data_response(version, allocate, window);
                assert_eq!(
                    got,
                    self.sc.version(),
                    "remote read returned a stale version"
                );
                self.complete(Action::RemoteRead {
                    allocates: allocate,
                })
            }
            (Endpoint::Mobile, WireMessage::WritePropagation { version }) => {
                match self.mc.handle_write_propagation(version) {
                    Some(delete) => self.send(Endpoint::Stationary, delete),
                    None => self.complete(Action::PropagatedWrite { deallocates: false }),
                }
            }
            (Endpoint::Stationary, WireMessage::DeleteRequest { window }) => {
                self.sc.handle_delete_request(window);
                self.complete(Action::PropagatedWrite { deallocates: true })
            }
            (Endpoint::Mobile, WireMessage::DeleteRequest { .. }) => {
                self.mc.handle_delete_request();
                self.complete(Action::DeleteRequestWrite)
            }
            (to, message) => unreachable!("{} delivered to {to:?}", message.kind()),
        }
    }

    /// Mutates the in-flight envelope at `index` — **verification support**:
    /// the model checker in `mdr-verify` uses this to seed deliberate
    /// protocol mutations (e.g. stripping the §4 window hand-off from an
    /// allocating response) and prove that the invariant suite catches them.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tamper_in_flight(&mut self, index: usize, tamper: impl FnOnce(&mut Envelope)) {
        tamper(&mut self.wire[index]);
    }

    /// Discards the in-flight envelope at `index` without delivering it —
    /// verification support for modelling an *unrecovered* message loss
    /// (the simulator's link-layer ARQ normally makes loss invisible to the
    /// protocol). The exchange is left dangling, which the checker's
    /// deadlock invariant must detect.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn drop_in_flight(&mut self, index: usize) -> Envelope {
        self.wire.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_to_completion(state: &mut ProtocolState, request: Request) -> Action {
        let mut outcome = state.submit(request);
        loop {
            match outcome {
                StepOutcome::Completed(action) => return action,
                StepOutcome::Sent(_) => outcome = state.deliver(0),
            }
        }
    }

    #[test]
    fn transition_relation_matches_the_reference_policy() {
        use mdr_core::Schedule;
        let schedule: Schedule = "rrrwwwrrwwrw".parse().unwrap();
        for spec in PolicySpec::roster(&[1, 3, 5], &[1, 2]) {
            let mut state = ProtocolState::new(spec);
            let mut oracle = spec.build();
            for req in &schedule {
                let action = drive_to_completion(&mut state, req);
                assert_eq!(action, oracle.on_request(req), "{spec}");
                assert_eq!(state.mc().has_copy(), oracle.has_copy(), "{spec}");
                assert!(state.idle());
                assert!(state.wire().is_empty());
            }
        }
    }

    #[test]
    fn ledger_accumulates_completed_actions() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        drive_to_completion(&mut state, Request::Read);
        drive_to_completion(&mut state, Request::Write);
        assert_eq!(state.counts().remote_reads, 1);
        assert_eq!(state.counts().silent_writes, 1);
        assert_eq!(state.counts().total(), 2);
    }

    #[test]
    fn remote_read_is_a_two_delivery_exchange() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let outcome = state.submit(Request::Read);
        assert!(matches!(outcome, StepOutcome::Sent(ref e) if e.to == Endpoint::Stationary));
        assert_eq!(state.serving(), Some(Request::Read));
        let outcome = state.deliver(0);
        assert!(matches!(outcome, StepOutcome::Sent(ref e) if e.to == Endpoint::Mobile));
        let outcome = state.deliver(0);
        assert!(matches!(
            outcome,
            StepOutcome::Completed(Action::RemoteRead { allocates: false })
        ));
        assert!(state.idle());
    }

    #[test]
    #[should_panic(expected = "serialized")]
    fn concurrent_submission_is_rejected() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let _ = state.submit(Request::Read);
        let _ = state.submit(Request::Read);
    }

    #[test]
    #[should_panic(expected = "without an exchange")]
    fn delivery_without_an_exchange_is_rejected() {
        let mut state = ProtocolState::new(PolicySpec::St2);
        let _ = state.deliver(0);
    }

    #[test]
    fn dropping_an_envelope_leaves_the_exchange_dangling() {
        let mut state = ProtocolState::new(PolicySpec::St1);
        let _ = state.submit(Request::Read);
        let dropped = state.drop_in_flight(0);
        assert_eq!(dropped.message, WireMessage::read_request());
        assert!(!state.idle());
        assert!(state.wire().is_empty());
    }

    #[test]
    fn equal_histories_produce_equal_states() {
        let a = {
            let mut s = ProtocolState::new(PolicySpec::SlidingWindow { k: 3 });
            drive_to_completion(&mut s, Request::Read);
            drive_to_completion(&mut s, Request::Read);
            s
        };
        let b = {
            let mut s = ProtocolState::new(PolicySpec::SlidingWindow { k: 3 });
            drive_to_completion(&mut s, Request::Read);
            drive_to_completion(&mut s, Request::Read);
            s
        };
        assert_eq!(a, b);
    }
}
