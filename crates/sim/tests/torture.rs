//! Deterministic crash-torture harness for the serving layer's
//! durability subsystem.
//!
//! Three seeded fail-point matrices, each asserting the recovery
//! invariant: the recovered state is bit-for-bit equal to the pre-crash
//! state or to a declared-clean prefix of it — never silently wrong, and
//! never a panic.
//!
//! 1. **Kill at every operation boundary** — a multi-tenant session is
//!    replayed up to every prefix length, the daemon is dropped without
//!    any shutdown ceremony, and the restarted daemon's per-tenant
//!    snapshots must equal a reference engine that applied the same
//!    prefix.
//! 2. **Truncate at every byte offset** — a single tenant's journal tail
//!    is cut at every possible byte, and recovery must land exactly on
//!    the snapshot chain element the surviving records describe.
//! 3. **Flip bits under the checksum** — seeded single-bit flips across
//!    the journal and the checkpoint file must yield prefix recovery or
//!    a single-tenant quarantine, with other tenants untouched.

use mdr_sim::engine::{ServeConfig, ServeEngine};
use mdr_sim::journal::{fnv1a64, scan_journal, JournalOp, TailOutcome};
use mdr_sim::{DurableServe, FsyncPolicy, JournalConfig};
use std::fs;
use std::path::{Path, PathBuf};

/// SplitMix64 — the repo's blessed seed-mixing step; drives every
/// "random" choice in this harness deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdr-torture-{tag}-{}-{}",
        std::process::id(),
        Box::leak(Box::new(0u8)) as *const u8 as usize,
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn journal_cfg(dir: &Path, checkpoint_every: u64) -> JournalConfig {
    JournalConfig {
        dir: dir.to_path_buf(),
        // `never`: the harness kills by dropping the process state, so
        // what recovery sees is exactly the bytes the OS has — fsync
        // cadence only matters for power loss, which a test cannot fake.
        fsync: FsyncPolicy::Never,
        checkpoint_every,
    }
}

/// The multi-tenant torture session: three tenants under different
/// policies, seed-driven request letters, a close, a reopen, and enough
/// decides to cross checkpoint boundaries.
fn session_lines(seed: u64) -> Vec<String> {
    let mut lines = vec![
        r#"{"op":"open","tenant":"sw","policy":"SW3"}"#.to_owned(),
        r#"{"op":"open","tenant":"t1","policy":"T1:2","model":"message:0.4"}"#.to_owned(),
        r#"{"op":"open","tenant":"st","policy":"ST2"}"#.to_owned(),
    ];
    let mut state = seed;
    for i in 0..60 {
        let tenant = ["sw", "t1", "st"][(splitmix64(&mut state) % 3) as usize];
        let letter = if splitmix64(&mut state) % 10 < 3 {
            "w"
        } else {
            "r"
        };
        lines.push(format!(
            r#"{{"op":"decide","tenant":"{tenant}","request":"{letter}"}}"#
        ));
        if i == 25 {
            lines.push(r#"{"op":"close","tenant":"st"}"#.to_owned());
        }
        if i == 40 {
            // Reopen the closed slot under a fresh policy.
            lines.push(r#"{"op":"open","tenant":"st","policy":"SW5"}"#.to_owned());
        }
    }
    lines
}

const TENANTS: [&str; 3] = ["sw", "t1", "st"];

/// One tenant's observable state, as the exact wire bytes of its
/// `snapshot` response (which embeds the full ActionCounts ledger), or
/// its typed error when the tenant is not open.
fn observe(handle: &mut dyn FnMut(&str) -> String) -> Vec<String> {
    TENANTS
        .iter()
        .map(|t| handle(&format!(r#"{{"op":"snapshot","tenant":"{t}"}}"#)))
        .collect()
}

/// FNV-1a digest over the observable state — the harness's "bit-for-bit"
/// summary.
fn digest(observation: &[String]) -> u64 {
    let mut bytes = Vec::new();
    for line in observation {
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    fnv1a64(&bytes)
}

#[test]
fn kill_at_every_op_boundary_recovers_the_exact_prefix() {
    let lines = session_lines(0xD1CE);
    let config = ServeConfig {
        adaptive: true,
        ..ServeConfig::default()
    };

    // Reference chain: the observable state after every prefix, from a
    // plain in-memory engine (no disk involved).
    let mut reference = ServeEngine::new(config).expect("engine");
    let mut chain: Vec<(u64, Vec<String>)> = Vec::new();
    chain.push({
        let obs = observe(&mut |l| reference.handle_line(l));
        (digest(&obs), obs)
    });
    for line in &lines {
        reference.handle_line(line);
        let obs = observe(&mut |l| reference.handle_line(l));
        chain.push((digest(&obs), obs));
    }

    for crash_after in 0..=lines.len() {
        let dir = temp_dir("kill");
        {
            let (mut serve, _) = DurableServe::open(config, journal_cfg(&dir, 8)).expect("open");
            for line in &lines[..crash_after] {
                serve.handle_line(line);
            }
            // Hard kill: drop with no shutdown, no finalize.
        }
        let (mut serve, report) =
            DurableServe::open(config, journal_cfg(&dir, 8)).expect("recover");
        assert!(
            report.quarantined().is_empty(),
            "crash point {crash_after} quarantined {:?}",
            report.quarantined()
        );
        let obs = observe(&mut |l| serve.handle_line(l));
        let (expected_digest, expected_obs) = &chain[crash_after];
        assert_eq!(
            digest(&obs),
            *expected_digest,
            "crash point {crash_after}: recovered\n{obs:#?}\nexpected\n{expected_obs:#?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Builds a single-tenant directory whose journal holds the open record
/// plus `decides` decide records (no checkpoint — `checkpoint_every` is
/// out of reach), returning the journal bytes and the snapshot chain
/// (observable state after 0..=decides decisions).
fn single_tenant_fixture(decides: usize) -> (Vec<u8>, Vec<String>, Vec<String>) {
    let letters: Vec<&str> = (0..decides)
        .map(|i| if i % 3 == 0 { "w" } else { "r" })
        .collect();
    let lines: Vec<String> =
        std::iter::once(r#"{"op":"open","tenant":"t","policy":"SW3"}"#.to_owned())
            .chain(
                letters
                    .iter()
                    .map(|l| format!(r#"{{"op":"decide","tenant":"t","request":"{l}"}}"#)),
            )
            .collect();

    let mut reference = ServeEngine::new(ServeConfig::default()).expect("engine");
    // chain[d] = the snapshot response after the open plus d decisions.
    let mut chain = Vec::new();
    let dir = temp_dir("fixture");
    let (mut serve, _) =
        DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 1 << 20)).expect("open");
    for line in &lines {
        serve.handle_line(line);
        reference.handle_line(line);
        chain.push(reference.handle_line(r#"{"op":"snapshot","tenant":"t"}"#));
    }
    let path = dir.join("tenants").join("t").join("journal.wal");
    let journal_bytes = fs::read(&path).expect("journal bytes");
    let _ = fs::remove_dir_all(&dir);
    assert_eq!(chain.len(), decides + 1);
    (journal_bytes, chain, lines)
}

/// Plants `bytes` as tenant `t`'s journal in a fresh data dir.
fn plant_journal(bytes: &[u8]) -> PathBuf {
    let dir = temp_dir("plant");
    let tenant_dir = dir.join("tenants").join("t");
    fs::create_dir_all(&tenant_dir).expect("tenant dir");
    fs::write(tenant_dir.join("journal.wal"), bytes).expect("journal");
    dir
}

#[test]
fn truncation_at_every_byte_offset_recovers_a_declared_prefix() {
    const DECIDES: usize = 12;
    let (journal_bytes, chain, _) = single_tenant_fixture(DECIDES);

    for cut in 0..=journal_bytes.len() {
        let truncated = &journal_bytes[..cut];
        // The library's own scan declares which prefix survives; the
        // recovered *state* must then match that declaration exactly.
        let scan = scan_journal(truncated);
        let survivors = scan.records.len();

        let dir = plant_journal(truncated);
        let (mut serve, report) =
            DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 1 << 20))
                .expect("recover");
        assert!(
            report.quarantined().is_empty(),
            "cut {cut} quarantined: {report:?}"
        );
        let snapshot = serve.handle_line(r#"{"op":"snapshot","tenant":"t"}"#);
        if survivors == 0 {
            // Not even the open survived: the clean prefix is "absent".
            assert!(snapshot.contains("unknown-tenant"), "cut {cut}: {snapshot}");
        } else {
            let decided = survivors - 1; // minus the open record
            assert_eq!(
                snapshot, chain[decided],
                "cut {cut}: expected the {decided}-decision snapshot"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn single_bit_flips_never_yield_silently_wrong_state() {
    const DECIDES: usize = 10;
    let (journal_bytes, chain, _) = single_tenant_fixture(DECIDES);

    // Every byte would be ~25k recoveries; a seeded sample of positions
    // (plus every bit of the first record) keeps the matrix dense where
    // the framing lives and bounded overall.
    let mut positions: Vec<(usize, u8)> = Vec::new();
    let first_record_len = 4 + 13 + 8; // len + (seq,kind,scalar) + check
    for byte in 0..first_record_len.min(journal_bytes.len()) {
        for bit in 0..8 {
            positions.push((byte, bit));
        }
    }
    let mut state = 0xB17F_11B5u64;
    for _ in 0..256 {
        let byte = (splitmix64(&mut state) as usize) % journal_bytes.len();
        let bit = (splitmix64(&mut state) % 8) as u8;
        positions.push((byte, bit));
    }

    for (byte, bit) in positions {
        let mut flipped = journal_bytes.clone();
        flipped[byte] ^= 1 << bit;
        let scan = scan_journal(&flipped);
        let survivors = scan.records.len();
        // The checksum guarantee: a flip under it can only shorten the
        // accepted prefix (or, in the length word, tear the tail) —
        // never smuggle a different record through.
        let original = scan_journal(&journal_bytes);
        assert!(
            survivors <= original.records.len(),
            "flip {byte}:{bit} grew the record count"
        );
        for (i, rec) in scan.records.iter().enumerate() {
            // Length-word flips can resync the scan only at a true
            // record boundary, where the records agree with the
            // originals; anything else must have been rejected.
            assert_eq!(
                rec, &original.records[i],
                "flip {byte}:{bit} altered record {i} undetected"
            );
        }

        let dir = plant_journal(&flipped);
        let (mut serve, report) =
            DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 1 << 20))
                .expect("recover");
        let snapshot = serve.handle_line(r#"{"op":"snapshot","tenant":"t"}"#);
        if report.quarantined().is_empty() && survivors > 0 {
            assert_eq!(
                snapshot,
                chain[survivors - 1],
                "flip {byte}:{bit}: recovered state is not the declared prefix"
            );
        } else {
            // Quarantined (e.g. a flipped sequence number upstream of
            // valid records) or fully truncated: the tenant must be
            // absent, never half-applied.
            assert!(
                snapshot.contains("unknown-tenant"),
                "flip {byte}:{bit}: {snapshot}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_bit_flips_quarantine_only_the_owner() {
    // Two tenants, both checkpointed; flip bits in one's checkpoint.
    let dir = temp_dir("ckpt-flip");
    {
        let (mut serve, _) =
            DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 4)).expect("open");
        for t in ["victim", "bystander"] {
            serve.handle_line(&format!(r#"{{"op":"open","tenant":"{t}","policy":"SW3"}}"#));
            for _ in 0..6 {
                serve.handle_line(&format!(
                    r#"{{"op":"decide","tenant":"{t}","request":"r"}}"#
                ));
            }
        }
        serve.finalize();
    }
    let victim_ckpt = dir.join("tenants").join("victim").join("checkpoint.ckpt");
    let pristine = fs::read(&victim_ckpt).expect("checkpoint bytes");
    let bystander_ckpt = dir
        .join("tenants")
        .join("bystander")
        .join("checkpoint.ckpt");
    let bystander_bytes = fs::read(&bystander_ckpt).expect("bystander checkpoint");

    let mut state = 0xC4A5_8F00u64;
    for _ in 0..64 {
        let byte = (splitmix64(&mut state) as usize) % pristine.len();
        let bit = (splitmix64(&mut state) % 8) as u8;
        let mut flipped = pristine.clone();
        flipped[byte] ^= 1 << bit;
        if flipped == pristine {
            continue;
        }

        let run = temp_dir("ckpt-case");
        for (t, ckpt) in [("victim", &flipped), ("bystander", &bystander_bytes)] {
            let td = run.join("tenants").join(t);
            fs::create_dir_all(&td).expect("tenant dir");
            fs::write(td.join("checkpoint.ckpt"), ckpt).expect("checkpoint");
        }
        let (mut serve, report) =
            DurableServe::open(ServeConfig::default(), journal_cfg(&run, 4)).expect("recover");
        // The flip either leaves a byte-identical-meaning file (it can
        // land in, say, trailing whitespace — impossible here since
        // every byte is load-bearing) or quarantines the victim alone.
        assert_eq!(
            report.quarantined(),
            vec!["victim"],
            "flip {byte}:{bit} did not quarantine the victim: {report:?}"
        );
        let bystander = serve.handle_line(r#"{"op":"stats","tenant":"bystander"}"#);
        assert!(
            bystander.contains("\"decided\":6"),
            "flip {byte}:{bit} harmed the bystander: {bystander}"
        );
        let victim = serve.handle_line(r#"{"op":"stats","tenant":"victim"}"#);
        assert!(victim.contains("unknown-tenant"), "{victim}");
        assert!(run.join("quarantine").join("victim").exists());
        let _ = fs::remove_dir_all(&run);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_record_kill_is_indistinguishable_from_truncation() {
    // A "kill mid-record" leaves a prefix of the frame on disk; recovery
    // must behave exactly as the truncation matrix proved. This case
    // additionally re-appends after recovery and proves the journal
    // stays consistent (sequence numbers continue past the checkpoint).
    const DECIDES: usize = 6;
    let (journal_bytes, chain, _) = single_tenant_fixture(DECIDES);
    let last_record_start = {
        let scan = scan_journal(&journal_bytes);
        assert_eq!(scan.outcome, TailOutcome::Clean);
        // Re-derive the last record's offset by scanning all but one byte.
        let torn = scan_journal(&journal_bytes[..journal_bytes.len() - 1]);
        match torn.outcome {
            TailOutcome::Torn { offset } => offset,
            other => panic!("expected torn, got {other:?}"),
        }
    };

    for cut in last_record_start + 1..journal_bytes.len() {
        let dir = plant_journal(&journal_bytes[..cut]);
        let (mut serve, report) =
            DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 1 << 20))
                .expect("recover");
        assert!(report.quarantined().is_empty());
        let snapshot = serve.handle_line(r#"{"op":"snapshot","tenant":"t"}"#);
        assert_eq!(snapshot, chain[DECIDES - 1], "cut {cut}");

        // Continue the stream on the recovered daemon, then restart
        // once more: the re-appended decision must survive.
        serve.handle_line(r#"{"op":"decide","tenant":"t","request":"w"}"#);
        drop(serve);
        let (mut serve, report) =
            DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 1 << 20))
                .expect("second recover");
        assert!(report.quarantined().is_empty());
        let stats = serve.handle_line(r#"{"op":"stats","tenant":"t"}"#);
        assert!(
            stats.contains(&format!("\"decided\":{DECIDES}")),
            "cut {cut}: {stats}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn scan_is_total_over_adversarial_bytes() {
    // Seeded garbage of many shapes: pure noise, noise with a valid
    // length prefix, and valid records followed by noise. The scan (and
    // recovery over it) must never panic and never over-allocate.
    let mut state = 0x5EED_F00Du64;
    for round in 0..64 {
        let len = (splitmix64(&mut state) % 200) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| splitmix64(&mut state) as u8).collect();
        if round % 3 == 0 {
            let mut valid = mdr_sim::journal::encode_record(
                1,
                &JournalOp::Open {
                    policy: "SW3".to_owned(),
                    model: "connection".to_owned(),
                },
            );
            valid.extend_from_slice(&bytes);
            bytes = valid;
        }
        let scan = scan_journal(&bytes);
        assert!(scan.clean_len <= bytes.len());

        let dir = plant_journal(&bytes);
        let (mut serve, _) = DurableServe::open(ServeConfig::default(), journal_cfg(&dir, 1 << 20))
            .expect("recovery is total");
        // Whatever happened, the daemon serves.
        let resp = serve.handle_line(r#"{"op":"stats"}"#);
        assert!(resp.contains("server-stats"), "{resp}");
        let _ = fs::remove_dir_all(&dir);
    }
}
