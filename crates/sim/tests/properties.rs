//! Property-based tests of the discrete-event simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mdr_core::{approx_eq, run_spec, CostModel, PolicySpec, Request, Schedule};
use mdr_sim::calendar::{key_lt, CalendarQueue};
use mdr_sim::engine::{DecisionCore, ServeConfig, ServeEngine};
use mdr_sim::sweep::{SweepGrid, SweepOptions};
use mdr_sim::{
    ArqConfig, ArrivalProcess, FaultPlan, PoissonWorkload, RunLimit, SimBuilder, Simulation,
    TopologyConfig, TraceWorkload,
};
use proptest::prelude::*;

/// A reference priority key carrying the simulator's total event order:
/// time under `total_cmp`, then actor rank, then sequence number.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RefKey(f64, u8, u64);

impl Eq for RefKey {}

impl PartialOrd for RefKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RefKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
            .then_with(|| self.2.cmp(&other.2))
    }
}

fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::St1),
        Just(PolicySpec::St2),
        (0usize..6).prop_map(|n| PolicySpec::SlidingWindow { k: 2 * n + 1 }),
        (1usize..6).prop_map(|m| PolicySpec::T1 { m }),
        (1usize..6).prop_map(|m| PolicySpec::T2 { m }),
    ]
}

fn arb_schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(prop::bool::ANY.prop_map(Request::from_bit), 1..=max_len)
        .prop_map(Schedule::from_requests)
}

/// A small but fully random [`SweepGrid`]: every axis varies, runs stay
/// cheap enough for a property test.
fn arb_grid() -> impl Strategy<Value = SweepGrid> {
    let policies = prop::collection::vec(arb_spec(), 1..=2);
    let thetas = prop::collection::vec(0.0f64..=1.0, 1..=2);
    let omegas = prop::collection::vec(0.0f64..=1.0, 1..=2);
    let faulted = prop::bool::ANY;
    let reps = 1usize..=2;
    let requests = 40usize..=120;
    let seed = any::<u64>();
    (policies, thetas, omegas, faulted, reps, requests, seed).prop_map(
        |(policies, thetas, omegas, faulted, reps, requests, seed)| {
            let faults = if faulted {
                let Ok(plan) = FaultPlan::new(0.05, 1.5, 0) else {
                    unreachable!("the literal fault rates are valid")
                };
                vec![None, Some(plan)]
            } else {
                vec![None]
            };
            let Ok(grid) = SweepGrid::new(seed)
                .policies(policies)
                .and_then(|g| g.thetas(thetas))
                .and_then(|g| g.omegas(omegas))
                .and_then(|g| g.fault_plans(faults))
                .and_then(|g| g.replications(reps))
                .and_then(|g| g.requests(requests))
            else {
                unreachable!("every generated axis is valid by construction")
            };
            grid
        },
    )
}

/// A random multi-cell topology: 2–4 cells, a live migration rate, a
/// lossy backbone, and optionally broadcast invalidation.
fn arb_topology() -> impl Strategy<Value = TopologyConfig> {
    let cells = 2usize..=4;
    let rate = 0.1f64..1.0;
    let deadline = 0.5f64..2.0;
    let loss = 0.0f64..0.5;
    let broadcast = prop::bool::ANY;
    let seed = any::<u64>();
    (cells, rate, deadline, loss, broadcast, seed).prop_map(
        |(cells, rate, deadline, loss, broadcast, seed)| {
            let Ok(topology) =
                TopologyConfig::new(cells, rate, deadline, seed).and_then(|t| t.with_loss(loss))
            else {
                unreachable!("the generated topology knobs are valid by construction")
            };
            if broadcast {
                topology.with_broadcast_invalidation()
            } else {
                topology
            }
        },
    )
}

/// A random grid with a live topology axis: [single-cell, random
/// multi-cell], small enough for a property test.
fn arb_topology_grid() -> impl Strategy<Value = SweepGrid> {
    let policies = prop::collection::vec(arb_spec(), 1..=2);
    let thetas = prop::collection::vec(0.0f64..=1.0, 1..=2);
    let topology = arb_topology();
    let reps = 1usize..=2;
    let requests = 40usize..=120;
    let seed = any::<u64>();
    (policies, thetas, topology, reps, requests, seed).prop_map(
        |(policies, thetas, topology, reps, requests, seed)| {
            let Ok(grid) = SweepGrid::new(seed)
                .policies(policies)
                .and_then(|g| g.thetas(thetas))
                .and_then(|g| g.topology_configs(vec![None, Some(topology)]))
                .and_then(|g| g.replications(reps))
                .and_then(|g| g.requests(requests))
            else {
                unreachable!("every generated axis is valid by construction")
            };
            grid
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator serves exactly the requested number of Poisson
    /// arrivals, with the oracle check live (any protocol divergence
    /// panics), for arbitrary parameters.
    #[test]
    fn poisson_runs_serve_exactly_n(
        spec in arb_spec(),
        theta in 0.0f64..=1.0,
        seed in any::<u64>(),
        latency in 0.0f64..0.5,
    ) {
        let n = 400;
        let mut sim = SimBuilder::new(spec)
            .and_then(|b| b.latency(latency))
            .unwrap()
            .simulation();
        let mut w = PoissonWorkload::from_theta(1.0, theta, seed);
        let report = sim.run(&mut w, RunLimit::Requests(n));
        prop_assert_eq!(report.counts.total(), n as u64);
        prop_assert_eq!(report.schedule.len(), n);
        // Costs are consistent with the action tallies on a lossless link.
        prop_assert_eq!(report.data_messages, report.counts.data_messages());
        prop_assert_eq!(report.control_messages, report.counts.control_messages());
    }

    /// Per-request connection cost never exceeds 1, and the message bill is
    /// bounded by (1 + ω) per request — on any schedule, any policy.
    #[test]
    fn per_request_cost_bounds(
        spec in arb_spec(),
        s in arb_schedule(200),
        omega in 0.0f64..=1.0,
    ) {
        let mut sim = SimBuilder::new(spec).unwrap().simulation();
        let mut w = TraceWorkload::new(s.clone(), 1.0);
        let report = sim.run(&mut w, RunLimit::Requests(s.len()));
        prop_assert!(report.cost(CostModel::Connection) <= s.len() as f64);
        prop_assert!(report.cost(CostModel::message(omega)) <= s.len() as f64 * (1.0 + omega) + 1e-9);
    }

    /// ARQ loss never changes the served actions — only the bill — and the
    /// bill only grows.
    #[test]
    fn loss_only_inflates(
        spec in arb_spec(),
        s in arb_schedule(120),
        loss in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let run = |with_loss: bool| {
            let builder = SimBuilder::new(spec).unwrap();
            let builder = if with_loss && loss > 0.0 {
                let Ok(lossy) = builder.loss(loss, 0.05, seed) else {
                    unreachable!("the generated loss grid is valid by construction")
                };
                lossy
            } else {
                builder
            };
            let mut sim = builder.simulation();
            let mut w = TraceWorkload::new(s.clone(), 1.0);
            sim.run(&mut w, RunLimit::Requests(s.len()))
        };
        let clean = run(false);
        let lossy = run(true);
        prop_assert_eq!(clean.counts, lossy.counts);
        prop_assert!(lossy.data_messages >= clean.data_messages);
        prop_assert!(lossy.control_messages >= clean.control_messages);
        prop_assert!(lossy.makespan >= clean.makespan - 1e-9);
    }

    /// Epoch/sequence idempotence: a network that duplicates and reorders
    /// envelopes (but never disconnects anyone) changes *nothing* — not the
    /// served actions, not the window state they encode, not a single
    /// billed message. Ghost copies are discarded by the delivery guards
    /// and are never billed. The oracle check is live, so any window-state
    /// divergence in SWk/SW1 would panic the run.
    #[test]
    fn duplication_and_reordering_are_invisible(
        spec in arb_spec(),
        s in arb_schedule(150),
        dup in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let run = |ghosts: bool| {
            let builder = SimBuilder::new(spec)
                .and_then(|b| b.latency(0.05))
                .unwrap();
            let builder = if ghosts {
                let Ok(plan) = FaultPlan::new(0.0, 1.0, seed)
                    .and_then(|p| p.with_duplication(dup, reorder)) else {
                    unreachable!("the generated ghost rates are valid by construction")
                };
                let Ok(faulted) = builder.faults(plan) else {
                    unreachable!("no conflicting plan was installed")
                };
                faulted
            } else {
                builder
            };
            let mut sim = builder.simulation();
            let mut w = TraceWorkload::new(s.clone(), 1.0);
            sim.run(&mut w, RunLimit::Requests(s.len()))
        };
        let clean = run(false);
        let noisy = run(true);
        prop_assert_eq!(clean.schedule, noisy.schedule);
        prop_assert_eq!(clean.counts, noisy.counts);
        // Ghosts are never billed: the wire tallies are *identical*, not
        // merely close.
        prop_assert_eq!(clean.data_messages, noisy.data_messages);
        prop_assert_eq!(clean.control_messages, noisy.control_messages);
        prop_assert_eq!(clean.connections, noisy.connections);
        // Every injected ghost was discarded by the epoch/sequence guards.
        prop_assert_eq!(noisy.duplicated_deliveries, noisy.discarded_deliveries);
        prop_assert_eq!(clean.duplicated_deliveries, 0);
    }

    /// Fault determinism: the same (FaultPlan, workload seed) pair replays
    /// the same run down to every counter — the acceptance bar for
    /// reproducible fault schedules.
    #[test]
    fn fault_schedules_replay_identically(
        spec in arb_spec(),
        rate in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let run = || {
            let Ok(plan) = FaultPlan::new(rate, 2.0, seed)
                .and_then(|p| p.with_crashes(0.4, 0.6))
                .and_then(|p| p.with_duplication(0.1, 0.1)) else {
                unreachable!("the generated fault rates are valid by construction")
            };
            let mut sim = SimBuilder::new(spec)
                .and_then(|b| b.latency(0.05))
                .and_then(|b| b.faults(plan))
                .unwrap()
                .simulation();
            let mut w = PoissonWorkload::from_theta(1.0, 0.4, seed ^ 0x5EED);
            sim.run(&mut w, RunLimit::Requests(300))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.data_messages, b.data_messages);
        prop_assert_eq!(a.control_messages, b.control_messages);
        prop_assert_eq!(a.connections, b.connections);
        prop_assert_eq!(a.disconnects, b.disconnects);
        prop_assert_eq!(a.mc_crashes, b.mc_crashes);
        prop_assert_eq!(a.reconciliations, b.reconciliations);
        prop_assert_eq!(a.aborted_messages, b.aborted_messages);
        prop_assert_eq!(a.reconciliation_messages, b.reconciliation_messages);
    }

    /// ARQ transport determinism and bounded retries: the same
    /// (ArqConfig, workload seed) replays the whole run — timer firings,
    /// jitter draws, escalations, sheds — byte-identically; the pre-jitter
    /// backoff schedule is monotone non-decreasing in the attempt number;
    /// every escalation consumed the full retry budget; and the billing
    /// identity closes at termination.
    #[test]
    fn arq_schedules_are_deterministic_and_bounded(
        spec in arb_spec(),
        loss in 0.0f64..0.6,
        budget in 1u32..6,
        backoff in 1.0f64..3.0,
        jitter in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let arq = || {
            let Ok(arq) = ArqConfig::new(loss, 0.2, seed)
                .and_then(|a| a.with_backoff(backoff, jitter))
                .and_then(|a| a.with_retry_budget(budget)) else {
                unreachable!("the generated transport knobs are valid by construction")
            };
            arq
        };
        let run = || {
            let mut sim = SimBuilder::new(spec)
                .and_then(|b| b.latency(0.05))
                .and_then(|b| b.arq(arq()))
                .unwrap()
                .simulation();
            let mut w = PoissonWorkload::from_theta(1.0, 0.4, seed ^ 0x5EED);
            sim.run(&mut w, RunLimit::Requests(250))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.schedule, &b.schedule);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.data_messages, b.data_messages);
        prop_assert_eq!(a.control_messages, b.control_messages);
        prop_assert_eq!(a.retransmissions, b.retransmissions);
        prop_assert_eq!(a.arq_acks, b.arq_acks);
        prop_assert_eq!(a.retry_escalations, b.retry_escalations);
        prop_assert_eq!(a.shed_requests(), b.shed_requests());
        prop_assert_eq!(a.degraded_reads, b.degraded_reads);
        prop_assert_eq!(a.recovery_time_sum.to_bits(), b.recovery_time_sum.to_bits());
        prop_assert_eq!(a.staleness_sum.to_bits(), b.staleness_sum.to_bits());
        // The pre-jitter backoff schedule never shrinks with the attempt
        // number (backoff factor ≥ 1 by construction).
        let cfg = arq();
        for attempt in 1..=budget {
            prop_assert!(
                cfg.timeout_for_attempt(attempt + 1) >= cfg.timeout_for_attempt(attempt)
            );
        }
        // Retries are bounded by the budget: an envelope escalates only
        // after exactly `budget` retransmissions, so the tally covers at
        // least that many per escalation.
        prop_assert!(a.retransmissions >= a.retry_escalations * u64::from(budget));
        // The billing identity closes at termination.
        prop_assert_eq!(
            a.data_messages + a.control_messages,
            a.counts.data_messages() + a.counts.control_messages()
                + a.settled_retransmissions + a.aborted_messages
                + a.reconciliation_messages + a.arq_acks
        );
    }

    /// Handoff idempotence: a backbone that duplicates and reorders
    /// HandoffCommit legs changes *nothing* observable — the epoch fence
    /// discards every ghost copy before it can re-commit a finished
    /// handoff. Only the discard tally moves.
    #[test]
    fn handoff_commits_are_idempotent_under_ghosts(
        spec in arb_spec(),
        theta in 0.0f64..=1.0,
        cells in 2usize..=4,
        rate in 0.1f64..1.0,
        dup in 0.1f64..0.8,
        reorder in 0.1f64..0.8,
        seed in any::<u64>(),
    ) {
        let run = |ghosts: bool| {
            let Ok(topology) = TopologyConfig::new(cells, rate, 2.0, seed).and_then(|t| {
                if ghosts { t.with_commit_ghosts(dup, reorder) } else { Ok(t) }
            }) else {
                unreachable!("the generated ghost rates are valid by construction")
            };
            let mut sim = SimBuilder::new(spec)
                .and_then(|b| b.latency(0.05))
                .and_then(|b| b.topology(topology))
                .unwrap()
                .simulation();
            let mut w = PoissonWorkload::from_theta(1.0, theta, seed ^ 0x5EED);
            sim.run(&mut w, RunLimit::Requests(250))
        };
        let clean = run(false);
        let noisy = run(true);
        prop_assert_eq!(&clean.schedule, &noisy.schedule);
        prop_assert_eq!(clean.counts, noisy.counts);
        prop_assert_eq!(clean.migrations, noisy.migrations);
        prop_assert_eq!(clean.handoffs_committed, noisy.handoffs_committed);
        prop_assert_eq!(clean.handoffs_aborted, noisy.handoffs_aborted);
        // Ghost legs are never billed and never re-commit: the handoff
        // bill and the invalidation traffic are *identical*.
        prop_assert_eq!(clean.handoff_messages, noisy.handoff_messages);
        prop_assert_eq!(clean.settled_handoff_messages, noisy.settled_handoff_messages);
        prop_assert_eq!(clean.invalidation_messages, noisy.invalidation_messages);
        prop_assert_eq!(clean.replicas_invalidated, noisy.replicas_invalidated);
        prop_assert_eq!(clean.stale_reads, noisy.stale_reads);
        prop_assert_eq!(clean.makespan.to_bits(), noisy.makespan.to_bits());
        // Ghosts can only *add* fence discards on top of the ones a
        // mid-flight migration already produces.
        prop_assert!(noisy.handoff_discards >= clean.handoff_discards);
    }

    /// The calendar queue and a reference binary heap agree on the full
    /// `(time, actor-rank, seq)` total order — same pop sequence, same
    /// `peek_key` before every pop — for arbitrary interleavings of
    /// pushes and pops, with time ties forced often enough to exercise
    /// the rank and sequence tie-breaks.
    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in prop::collection::vec(
            (
                // Half the draws are quantized so exact time ties occur.
                prop_oneof![0.0f64..100.0, (0u32..16).prop_map(|i| f64::from(i) * 2.5)],
                0u8..4,
                prop::bool::ANY,
            ),
            1..200,
        ),
    ) {
        let mut calendar: CalendarQueue<(u8, u64)> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<RefKey>> = BinaryHeap::new();
        let mut seq = 0u64;

        // Pops one event from both queues and checks full agreement:
        // peek before pop, then (time, rank, seq) of the popped event.
        macro_rules! pop_both {
            () => {{
                let Some(Reverse(RefKey(at, rank, seq))) = heap.pop() else {
                    unreachable!("callers check non-emptiness first")
                };
                let expect = (at, rank, seq);
                prop_assert_eq!(calendar.peek_key(), Some(expect));
                let Some((popped_at, (popped_rank, popped_seq))) = calendar.pop() else {
                    return Err(TestCaseError::fail("calendar ran dry before the heap"));
                };
                prop_assert_eq!((popped_at, popped_rank, popped_seq), expect);
                expect
            }};
        }

        // Interleaved phase: every op pushes, and about half of them
        // immediately pop the current minimum from both queues.
        for &(time, rank, pop_now) in &ops {
            seq += 1;
            calendar.push(time, rank, seq, (rank, seq));
            heap.push(Reverse(RefKey(time, rank, seq)));
            if pop_now {
                pop_both!();
            }
            prop_assert_eq!(calendar.len(), heap.len());
        }

        // Drain phase: the survivors leave both queues in the same
        // non-decreasing total order.
        let mut last_popped: Option<(f64, u8, u64)> = None;
        while !heap.is_empty() {
            let popped = pop_both!();
            if let Some(prev) = last_popped {
                prop_assert!(!key_lt(popped, prev));
            }
            last_popped = Some(popped);
        }
        prop_assert!(calendar.is_empty());
        prop_assert_eq!(calendar.peek_key(), None);
    }

    /// Workload determinism: the same seed replays the same arrivals, and
    /// arrival times are strictly increasing.
    #[test]
    fn workloads_are_deterministic_and_ordered(
        theta in 0.0f64..=1.0,
        rate in 0.1f64..50.0,
        seed in any::<u64>(),
    ) {
        let take = |mut w: PoissonWorkload| -> Vec<(f64, Request)> {
            (0..200).map(|_| { let a = w.next_arrival().unwrap(); (a.time, a.request) }).collect()
        };
        let a = take(PoissonWorkload::from_theta(rate, theta, seed));
        let b = take(PoissonWorkload::from_theta(rate, theta, seed));
        prop_assert_eq!(&a, &b);
        for pair in a.windows(2) {
            prop_assert!(pair[1].0 > pair[0].0);
        }
    }
}

proptest! {
    // Each case runs a grid 4 times; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole determinism property: **any** grid swept at 1, 2 and N
    /// threads (and any chunking) produces a byte-identical report —
    /// every cell, every summary entry, the digest, and the printed
    /// ledger, down to the last float bit.
    #[test]
    fn sweeps_are_thread_count_invariant(
        grid in arb_grid(),
        threads in 2usize..=6,
        chunk in 0usize..=3,
    ) {
        let serial = grid.run_serial();
        let one = grid.run(SweepOptions { threads: 1, chunk });
        let two = grid.run(SweepOptions { threads: 2, chunk: 1 });
        let n = grid.run(SweepOptions { threads, chunk });
        prop_assert_eq!(&serial, &one);
        prop_assert_eq!(&serial, &two);
        prop_assert_eq!(&serial, &n);
        prop_assert_eq!(serial.summary, n.summary.clone());
        prop_assert_eq!(serial.ledger_digest(), n.ledger_digest());
        prop_assert_eq!(serial.ledger_lines().into_bytes(), n.ledger_lines().into_bytes());
    }

    /// Handoff determinism across thread counts: a grid with a random
    /// multi-cell topology axis — migrations, lossy backbone handoffs,
    /// invalidation fan-out — swept at 1 and 4 threads produces a
    /// byte-identical ledger, digest and printed lines.
    #[test]
    fn handoff_sweeps_are_thread_count_invariant(
        grid in arb_topology_grid(),
        chunk in 0usize..=3,
    ) {
        let serial = grid.run_serial();
        let one = grid.run(SweepOptions { threads: 1, chunk });
        let four = grid.run(SweepOptions { threads: 4, chunk });
        prop_assert_eq!(&serial, &one);
        prop_assert_eq!(&serial, &four);
        prop_assert_eq!(serial.ledger_digest(), four.ledger_digest());
        prop_assert_eq!(serial.ledger_lines().into_bytes(), four.ledger_lines().into_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decision-core equivalence: a standalone [`DecisionCore`] fed a
    /// schedule takes exactly the actions of the pure reference policy
    /// *and* reaches the same terminal ledger as the full discrete-event
    /// simulator (whose internal oracle — itself a `DecisionCore` —
    /// asserts per-request action equality along the way, so any
    /// divergence panics the run rather than merely failing a final
    /// comparison).
    #[test]
    fn decision_core_matches_the_simulator(
        spec in arb_spec(),
        s in arb_schedule(200),
        omega in 0.0f64..=1.0,
    ) {
        let model = CostModel::message(omega);
        let Ok(mut core) = DecisionCore::new(spec, model) else {
            return Err(TestCaseError::fail("arb_spec generates valid specs"));
        };
        let mut reference = spec.build();
        for r in &s {
            let d = core.decide(r);
            prop_assert_eq!(d.action, reference.on_request(r));
            prop_assert_eq!(d.has_copy, reference.has_copy());
        }
        let outcome = run_spec(spec, &s, model);
        prop_assert_eq!(outcome.counts, *core.counts());
        prop_assert_eq!(outcome.final_copy, core.has_copy());
        prop_assert!(approx_eq(outcome.total_cost, core.total_cost()));
        let report = Simulation::run_schedule(spec, &s);
        prop_assert_eq!(&report.schedule, &s);
        prop_assert_eq!(report.counts, *core.counts());
    }

    /// Serve-layer snapshot/restore round trip: serving N requests,
    /// snapshotting, restoring into a fresh tenant and serving M more
    /// produces byte-identical responses — and the same terminal stats as
    /// serving all N + M requests in one uninterrupted session.
    #[test]
    fn serve_snapshot_restore_round_trips(
        spec in arb_spec(),
        head in arb_schedule(100),
        tail in arb_schedule(100),
    ) {
        let Ok(mut engine) = ServeEngine::new(ServeConfig::default()) else {
            return Err(TestCaseError::fail("the default serve config is valid"));
        };
        let open = |tenant: &str| {
            format!(r#"{{"op":"open","tenant":"{tenant}","policy":"{spec}","model":"message:0.5"}}"#)
        };
        let decide = |tenant: &str, r: Request| {
            format!(r#"{{"op":"decide","tenant":"{tenant}","request":"{}"}}"#, r.letter())
        };
        // Tenant `a` serves the head; `whole` serves head + tail unbroken.
        engine.handle_line(&open("a"));
        engine.handle_line(&open("whole"));
        for r in &head {
            engine.handle_line(&decide("a", r));
            engine.handle_line(&decide("whole", r));
        }
        // Snapshot `a` and restore it as `b`.
        let snap = engine.handle_line(r#"{"op":"snapshot","tenant":"a"}"#);
        let Some(snapshot_json) = snap
            .strip_prefix(r#"{"ok":"snapshot","tenant":"a","snapshot":"#)
            .and_then(|s| s.strip_suffix('}'))
        else {
            return Err(TestCaseError::fail(format!("unexpected snapshot shape: {snap}")));
        };
        let restored = engine
            .handle_line(&format!(r#"{{"op":"restore","tenant":"b","snapshot":{snapshot_json}}}"#));
        let restore_ok = restored.starts_with(r#"{"ok":"restore""#);
        prop_assert!(restore_ok, "unexpected restore response: {}", restored);
        // The restored tenant now serves the tail byte-identically to the
        // original, and both end exactly where the unbroken session ends.
        for r in &tail {
            let a = engine.handle_line(&decide("a", r));
            let b = engine.handle_line(&decide("b", r));
            let w = engine.handle_line(&decide("whole", r));
            prop_assert_eq!(
                a.replace(r#""tenant":"a""#, ""),
                b.replace(r#""tenant":"b""#, "")
            );
            prop_assert_eq!(
                a.replace(r#""tenant":"a""#, ""),
                w.replace(r#""tenant":"whole""#, "")
            );
        }
        let stats = |engine: &mut ServeEngine, tenant: &str| {
            engine
                .handle_line(&format!(r#"{{"op":"stats","tenant":"{tenant}"}}"#))
                .replace(&format!(r#""tenant":"{tenant}""#), "")
        };
        let a = stats(&mut engine, "a");
        prop_assert_eq!(&a, &stats(&mut engine, "b"));
        prop_assert_eq!(&a, &stats(&mut engine, "whole"));
    }
}

#[test]
fn regression_st2_poisson_with_high_latency() {
    // Pinned from a proptest shrink once recorded in the regression file:
    // ST2, θ ≈ 0.5357, seed 4359208734433868950, latency ≈ 0.4781. The run
    // must serve exactly n requests with the oracle check live and with
    // wire tallies matching the action ledger.
    let mut sim = match SimBuilder::new(PolicySpec::St2).and_then(|b| b.latency(0.4781375308365721))
    {
        Ok(builder) => Simulation::new(builder.build()),
        Err(e) => panic!("builder rejected a valid configuration: {e}"),
    };
    let mut w = PoissonWorkload::from_theta(1.0, 0.535714170090935, 4359208734433868950);
    let report = sim.run(&mut w, RunLimit::Requests(400));
    assert_eq!(report.counts.total(), 400);
    assert_eq!(report.schedule.len(), 400);
    assert_eq!(report.data_messages, report.counts.data_messages());
    assert_eq!(report.control_messages, report.counts.control_messages());
}
