//! Property tests for the durability layer: journal record framing,
//! checkpoint images, and the `restore` wire path under hostile input.

use mdr_core::{CostModel, PolicySpec, Request};
use mdr_sim::engine::{CoreSnapshot, DecisionCore, ServeConfig, ServeEngine};
use mdr_sim::journal::{
    decode_checkpoint, decode_record, encode_checkpoint, encode_record, escape_tenant,
    scan_journal, unescape_tenant, Checkpoint, JournalOp, TailOutcome, CHECKPOINT_VERSION,
};
use proptest::prelude::*;

/// Arbitrary text of up to `max` code points, spanning ASCII, multi-byte
/// BMP, and astral characters (the vendored proptest has no string
/// strategies, so this builds one from raw words).
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..max).prop_map(|words| {
        words
            .into_iter()
            .map(|w| char::from_u32(w % 0x0011_0000).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

fn arb_char() -> impl Strategy<Value = char> {
    any::<u32>().prop_map(|w| char::from_u32(w % 0x0011_0000).unwrap_or('\u{FFFD}'))
}

fn arb_op() -> impl Strategy<Value = JournalOp> {
    prop_oneof![
        (arb_text(20), arb_text(20)).prop_map(|(policy, model)| JournalOp::Open { policy, model }),
        arb_char().prop_map(|request| JournalOp::Decide { request }),
        arb_text(20).prop_map(|policy| JournalOp::Adopt { policy }),
        arb_text(30).prop_map(|snapshot| JournalOp::Restore { snapshot }),
        Just(JournalOp::Close),
    ]
}

/// A snapshot with real history behind it, for checkpoint round-trips.
fn sample_snapshot(decides: u64) -> CoreSnapshot {
    let mut core =
        DecisionCore::new(PolicySpec::SlidingWindow { k: 3 }, CostModel::Connection).expect("core");
    for i in 0..decides {
        core.decide(if i % 3 == 0 {
            Request::Write
        } else {
            Request::Read
        });
    }
    core.snapshot()
}

proptest! {
    /// encode → decode is the identity for every representable record.
    #[test]
    fn record_round_trips(seq in 1u64..u64::MAX, op in arb_op()) {
        let frame = encode_record(seq, &op);
        let body = &frame[4..frame.len() - 8];
        let decoded = decode_record(body).expect("own encoding decodes");
        prop_assert_eq!(decoded, (seq, op.clone()));
    }

    /// A journal of consecutive records scans back clean and complete.
    #[test]
    fn journal_scan_round_trips(ops in prop::collection::vec(arb_op(), 1..12)) {
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, op));
        }
        let scan = scan_journal(&bytes);
        prop_assert_eq!(scan.outcome, TailOutcome::Clean);
        prop_assert_eq!(scan.clean_len, bytes.len());
        prop_assert_eq!(scan.records.len(), ops.len());
        for (i, (seq, op)) in scan.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(op, &ops[i]);
        }
    }

    /// Any single-bit flip anywhere in a journal yields a strict prefix
    /// of the original records — the checksum never lets an altered
    /// record through, and framing damage only shortens the accepted
    /// tail.
    #[test]
    fn single_bit_flip_only_shortens(
        ops in prop::collection::vec(arb_op(), 1..8),
        flip_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, op));
        }
        let original = scan_journal(&bytes);
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let scan = scan_journal(&bytes);
        // The flip damaged at least the record it landed in, and the
        // scan stops there; what survives is byte-identical originals.
        prop_assert!(scan.records.len() < original.records.len());
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec, &original.records[i], "record {} altered undetected", i);
        }
    }

    /// A sequence gap (or regression) is rejected at the exact record
    /// that breaks the chain, keeping everything before it.
    #[test]
    fn sequence_gaps_are_detected(
        ops in prop::collection::vec(arb_op(), 2..8),
        gap_at in 1usize..7,
        jump in prop_oneof![Just(0u64), 2u64..100],
    ) {
        let gap_at = gap_at.min(ops.len() - 1);
        let mut bytes = Vec::new();
        let mut boundary = 0;
        for (i, op) in ops.iter().enumerate() {
            let seq = if i < gap_at {
                i as u64 + 1
            } else {
                // From the gap on, sequences continue from the wrong
                // place: a repeat (jump 0) or a skip (jump ≥ 2).
                gap_at as u64 + jump + (i - gap_at) as u64
            };
            if i == gap_at {
                boundary = bytes.len();
            }
            bytes.extend_from_slice(&encode_record(seq, op));
        }
        let scan = scan_journal(&bytes);
        prop_assert_eq!(scan.records.len(), gap_at);
        prop_assert_eq!(scan.clean_len, boundary);
        prop_assert!(
            matches!(scan.outcome, TailOutcome::Corrupt { offset, .. } if offset == boundary)
        );
    }

    /// Checkpoint images round-trip exactly, and any single-bit flip in
    /// the encoded file is rejected as an error, never misread.
    #[test]
    fn checkpoint_round_trips_and_rejects_flips(
        decides in 0u64..40,
        seq in 1u64..10_000,
        adapted in proptest::bool::ANY,
        flip_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            seq,
            snapshot: sample_snapshot(decides),
            adapted,
            adapt_checkpoint: if adapted { None } else { Some((decides / 3, decides)) },
        };
        let encoded = encode_checkpoint(&checkpoint);
        let decoded = decode_checkpoint(&encoded).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &checkpoint);

        let mut flipped = encoded.clone().into_bytes();
        let pos = flip_pos % flipped.len();
        flipped[pos] ^= 1 << bit;
        match String::from_utf8(flipped) {
            // No longer text at all: rejected before decoding starts.
            Err(_) => {}
            Ok(text) => {
                prop_assert!(text != encoded);
                prop_assert!(
                    decode_checkpoint(&text).is_err(),
                    "flip {}:{} accepted", pos, bit
                );
            }
        }
    }

    /// Tenant-name escaping round-trips for arbitrary names, produces
    /// only filesystem-safe bytes, and never collides two names.
    #[test]
    fn tenant_escaping_round_trips(name in arb_text(12), other in arb_text(12)) {
        let escaped = escape_tenant(&name);
        prop_assert!(escaped
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'));
        let unescaped = unescape_tenant(&escaped);
        prop_assert_eq!(unescaped.as_deref(), Some(name.as_str()));
        if name != other {
            prop_assert_ne!(escape_tenant(&name), escape_tenant(&other));
        }
    }
}

// ---------------------------------------------------------------------------
// The `restore` wire path under hostile snapshot JSON.
// ---------------------------------------------------------------------------

/// Drives `restore` with an arbitrary `snapshot` payload and asserts
/// the transaction property: exactly one response line, and on any
/// error the tenant's observable state is byte-identical to before.
fn assert_restore_is_atomic(engine: &mut ServeEngine, payload: &str) {
    let before = engine.handle_line(r#"{"op":"snapshot","tenant":"t"}"#);
    let line = format!(r#"{{"op":"restore","tenant":"t","snapshot":{payload}}}"#);
    let response = engine.handle_line(&line);
    assert!(!response.contains('\n'), "multi-line response: {response}");
    if response.starts_with(r#"{"err""#) {
        let after = engine.handle_line(r#"{"op":"snapshot","tenant":"t"}"#);
        assert_eq!(before, after, "failed restore mutated the core");
    } else {
        assert!(response.starts_with(r#"{"ok":"restore""#), "{response}");
    }
}

proptest! {
    /// Arbitrary payloads: never a panic, never a partial application.
    #[test]
    fn restore_survives_arbitrary_payloads(payload in arb_text(60)) {
        let mut engine = ServeEngine::new(ServeConfig::default()).expect("engine");
        engine.handle_line(r#"{"op":"open","tenant":"t","policy":"SW3"}"#);
        assert_restore_is_atomic(&mut engine, &payload);
    }

    /// Truncations and single-character corruptions of a *valid*
    /// snapshot JSON: the near-misses most likely to half-parse.
    #[test]
    fn restore_survives_damaged_valid_snapshots(
        decides in 0u64..30,
        cut in any::<usize>(),
        corrupt_pos in any::<usize>(),
        replacement in 0x20u32..0x7f,
    ) {
        let json = serde_json::to_string(&sample_snapshot(decides)).expect("serializes");
        let mut engine = ServeEngine::new(ServeConfig::default()).expect("engine");
        engine.handle_line(r#"{"op":"open","tenant":"t","policy":"SW3"}"#);

        let truncated = &json[..cut % (json.len() + 1)];
        assert_restore_is_atomic(&mut engine, truncated);

        let mut corrupted = json.clone().into_bytes();
        let pos = corrupt_pos % corrupted.len();
        corrupted[pos] = replacement as u8;
        let corrupted = String::from_utf8(corrupted).expect("ascii stays ascii");
        assert_restore_is_atomic(&mut engine, &corrupted);

        // And the undamaged original still restores cleanly.
        let response = engine.handle_line(&format!(
            r#"{{"op":"restore","tenant":"t","snapshot":{json}}}"#
        ));
        let ok = response.starts_with(r#"{"ok":"restore""#);
        prop_assert!(ok);
    }
}
