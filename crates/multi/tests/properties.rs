//! Property-based tests of the multi-object machinery.

use mdr_multi::{
    simulate_windowed, Allocation, ObjectSet, OpKind, Operation, OperationProfile,
    PerObjectWindows, WindowedAllocator,
};
use proptest::prelude::*;

const N: usize = 3;

fn arb_operation() -> impl Strategy<Value = Operation> {
    (1u32..(1 << N), prop::bool::ANY).prop_map(|(bits, is_read)| {
        let set = ObjectSet::from_bits(bits);
        if is_read {
            Operation::read(set)
        } else {
            Operation::write(set)
        }
    })
}

fn arb_profile() -> impl Strategy<Value = OperationProfile> {
    prop::collection::btree_map(arb_operation(), 0.1f64..10.0, 1..10)
        .prop_map(|m| OperationProfile::new(N, m.into_iter().collect()))
}

proptest! {
    /// The enumerated optimum really minimizes over all 2^n allocations.
    #[test]
    fn optimal_allocation_is_minimal(profile in arb_profile()) {
        let (best, cost) = profile.optimal_allocation();
        prop_assert!((profile.expected_cost(best) - cost).abs() < 1e-12);
        for s in ObjectSet::all_subsets(N) {
            prop_assert!(cost <= profile.expected_cost(Allocation(s)) + 1e-12);
        }
    }

    /// Expected cost is a probability-weighted average of {0, 1} charges:
    /// bounded by [0, 1] and consistent with the per-class decomposition.
    #[test]
    fn expected_cost_decomposes(profile in arb_profile()) {
        for s in ObjectSet::all_subsets(N) {
            let alloc = Allocation(s);
            let direct = profile.expected_cost(alloc);
            let manual: f64 = profile
                .entries()
                .iter()
                .map(|&(op, rate)| rate / profile.total_rate() * alloc.connection_cost(op))
                .sum();
            prop_assert!((direct - manual).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&direct));
        }
    }

    /// Per-operation costs follow the §7.2 rules exactly.
    #[test]
    fn operation_cost_rules(op in arb_operation(), bits in 0u32..(1 << N), omega in 0.0f64..=1.0) {
        let alloc = Allocation(ObjectSet::from_bits(bits));
        let conn = alloc.connection_cost(op);
        let msg = alloc.message_cost(op, omega);
        match op.kind {
            OpKind::Read => {
                let expected = if op.objects.is_subset_of(alloc.0) { 0.0 } else { 1.0 };
                prop_assert_eq!(conn, expected);
                prop_assert!((msg - expected * (1.0 + omega)).abs() < 1e-12);
            }
            OpKind::Write => {
                let expected = if op.objects.intersects(alloc.0) { 1.0 } else { 0.0 };
                prop_assert_eq!(conn, expected);
                prop_assert_eq!(msg, expected);
            }
        }
    }

    /// The windowed allocator's frequency estimate is a valid profile whose
    /// probabilities sum to 1 and reflect only the window contents.
    #[test]
    fn window_estimate_is_a_distribution(ops in prop::collection::vec(arb_operation(), 1..200)) {
        let mut alloc = WindowedAllocator::new(N, 50, 1_000_000);
        for &op in &ops {
            alloc.on_operation(op);
        }
        let est = alloc.estimate_profile();
        let total: f64 = est.entries().iter().map(|&(op, _)| est.probability(op)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let window_len = ops.len().min(50) as f64;
        for &(op, rate) in est.entries() {
            // Rates are integer counts from the window.
            prop_assert!(rate >= 1.0 && rate <= window_len);
            prop_assert!((rate - rate.round()).abs() < 1e-12, "{op}: {rate}");
        }
    }

    /// On a stationary profile the windowed allocator's cost is never much
    /// worse than the worst static (sanity envelope) and at least the
    /// optimal static's (lower bound), up to sampling noise.
    #[test]
    fn windowed_cost_is_enveloped(profile in arb_profile(), seed in any::<u64>()) {
        let mut alloc = WindowedAllocator::new(N, 100, 20);
        let report = simulate_windowed(&profile, &mut alloc, 3_000, seed);
        let n = report.operations as f64;
        let (_, opt) = profile.optimal_allocation();
        // Lower bound with generous noise margin.
        prop_assert!(report.dynamic_cost >= opt * n - 0.15 * n - 50.0);
        // Upper envelope: can't exceed paying for every operation.
        prop_assert!(report.dynamic_cost <= n + 1e-9);
    }

    /// The per-object baseline produces only legal allocations and charges
    /// consistently with them.
    #[test]
    fn per_object_baseline_is_consistent(ops in prop::collection::vec(arb_operation(), 1..300)) {
        let mut baseline = PerObjectWindows::new(N, 5);
        for &op in &ops {
            let before = baseline.allocation();
            let cost = baseline.on_operation(op);
            prop_assert_eq!(cost, before.connection_cost(op));
        }
    }
}
