//! # mdr-multi — multi-object allocation (§7.2)
//!
//! The multiple-objects extension of **Huang, Sistla, Wolfson, "Data
//! Replication for Mobile Computers" (SIGMOD 1994)**: reads and writes may
//! touch *sets* of objects in a single interaction, operations are
//! classified by (kind, object set) with per-class Poisson frequencies,
//! and an allocation scheme decides which objects the mobile computer
//! replicates.
//!
//! * [`ObjectSet`] / [`Operation`] — joint operations over small object
//!   universes;
//! * [`OperationProfile`] — class frequencies, the §7.2 expected-cost
//!   formulas, and the optimal static allocation by enumeration;
//! * [`WindowedAllocator`] — the dynamic variant: estimate the frequencies
//!   from a window of recent operations and periodically re-install the
//!   cheapest allocation;
//! * [`simulate_windowed`] / [`simulate_windowed_shift`] — Monte-Carlo
//!   comparison of the dynamic allocator against the optimal static and the
//!   all-or-nothing schemes.
//!
//! ```
//! use mdr_multi::{Allocation, OperationProfile};
//!
//! // The paper's two-object setting: x read-heavy, y write-heavy.
//! let profile = OperationProfile::two_objects(8.0, 1.0, 1.0, 1.0, 8.0, 1.0);
//! let (best, cost) = profile.optimal_allocation();
//! assert!(cost <= profile.expected_cost(Allocation::EMPTY));
//! assert!(best.0.contains(0) && !best.0.contains(1)); // replicate x only
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dynamic;
mod objects;
mod per_object;
mod profile;

pub use dynamic::{simulate_windowed, simulate_windowed_shift, MultiRunReport, WindowedAllocator};
pub use objects::{ObjectSet, OpKind, Operation, MAX_OBJECTS};
pub use per_object::PerObjectWindows;
pub use profile::{Allocation, OperationProfile};
