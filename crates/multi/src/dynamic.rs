//! The window-based dynamic multi-object allocator (§7.2, second half).
//!
//! When the class frequencies are *not* known in advance, the paper keeps
//! "track of the number of operations of different kind … in the window",
//! computes frequency estimates from those counts, evaluates the expected
//! cost of every candidate allocation under the estimates, and installs the
//! cheapest one. "To avoid excessive overhead, this recomputation can be
//! done periodically instead of after each operation."

use crate::objects::{ObjectSet, Operation};
use crate::profile::{Allocation, OperationProfile};
use mdr_core::approx_eq;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};

/// The windowed frequency-estimating allocator.
#[derive(Debug, Clone)]
pub struct WindowedAllocator {
    n_objects: usize,
    window_size: usize,
    recompute_every: usize,
    // Ordered map on purpose: `estimate_profile` folds these counts into
    // float frequencies, and hash-order iteration would let the summation
    // order — and therefore the last-bit rounding of every estimated cost
    // — vary between processes, breaking byte-identical sweep ledgers
    // (`cargo xtask audit` rule `map-iteration`).
    window: VecDeque<Operation>,
    counts: BTreeMap<Operation, usize>,
    since_recompute: usize,
    current: Allocation,
    reallocations: u64,
    /// Cost charged per newly replicated object on a re-allocation (a data
    /// message shipping the copy). The paper's analysis assumes transitions
    /// piggyback for free; a non-zero value models the §7.2 "excessive
    /// overhead" that motivates *periodic* recomputation.
    alloc_cost: f64,
    /// Cost charged per dropped object on a re-allocation (a delete-request
    /// control message).
    dealloc_cost: f64,
    transition_cost_paid: f64,
}

impl WindowedAllocator {
    /// Creates the allocator over `n_objects` objects, estimating from the
    /// last `window_size` operations and re-optimizing every
    /// `recompute_every` operations. Starts from the empty allocation (no
    /// replicas at the MC — the cold start).
    pub fn new(n_objects: usize, window_size: usize, recompute_every: usize) -> Self {
        assert!(window_size >= 1, "window must hold at least one operation");
        assert!(recompute_every >= 1, "recompute period must be at least 1");
        WindowedAllocator {
            n_objects,
            window_size,
            recompute_every,
            window: VecDeque::with_capacity(window_size),
            counts: BTreeMap::new(),
            since_recompute: 0,
            current: Allocation::EMPTY,
            reallocations: 0,
            alloc_cost: 0.0,
            dealloc_cost: 0.0,
            transition_cost_paid: 0.0,
        }
    }

    /// Charges re-allocations: `alloc_cost` per object gaining a replica
    /// (data shipment) and `dealloc_cost` per object losing one
    /// (delete-request). Defaults are 0 (the paper's free-piggyback
    /// assumption).
    pub fn with_transition_costs(mut self, alloc_cost: f64, dealloc_cost: f64) -> Self {
        assert!(
            alloc_cost >= 0.0 && dealloc_cost >= 0.0,
            "transition costs must be non-negative"
        );
        self.alloc_cost = alloc_cost;
        self.dealloc_cost = dealloc_cost;
        self
    }

    /// Total transition cost charged so far.
    pub fn transition_cost_paid(&self) -> f64 {
        self.transition_cost_paid
    }

    /// The allocation currently installed.
    pub fn current_allocation(&self) -> Allocation {
        self.current
    }

    /// How many times the allocation actually changed.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Processes one operation: charges it under the *current* allocation,
    /// slides the window, and (periodically) re-optimizes. Returns the
    /// connection cost of the operation.
    pub fn on_operation(&mut self, op: Operation) -> f64 {
        let cost = self.current.connection_cost(op);
        // Slide the window.
        if self.window.len() == self.window_size {
            let Some(old) = self.window.pop_front() else {
                unreachable!("the window is non-empty at capacity");
            };
            if let Some(c) = self.counts.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&old);
                }
            }
        }
        self.window.push_back(op);
        *self.counts.entry(op).or_insert(0) += 1;
        // Periodic re-optimization.
        self.since_recompute += 1;
        let mut transition = 0.0;
        if self.since_recompute >= self.recompute_every {
            self.since_recompute = 0;
            let best = self.estimate_profile().optimal_allocation().0;
            if best != self.current {
                let gained = best.0.bits() & !self.current.0.bits();
                let dropped = self.current.0.bits() & !best.0.bits();
                transition = f64::from(gained.count_ones()) * self.alloc_cost
                    + f64::from(dropped.count_ones()) * self.dealloc_cost;
                self.transition_cost_paid += transition;
                self.current = best;
                self.reallocations += 1;
            }
        }
        cost + transition
    }

    /// The frequency estimate from the current window contents. Entries
    /// are produced in `Operation` order (the map is ordered), so the
    /// profile's float folds are reproducible across processes.
    pub fn estimate_profile(&self) -> OperationProfile {
        let entries: Vec<(Operation, f64)> =
            self.counts.iter().map(|(&op, &c)| (op, c as f64)).collect();
        OperationProfile::new(self.n_objects, entries)
    }
}

/// Outcome of a multi-object simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiRunReport {
    /// Operations processed.
    pub operations: usize,
    /// Total connection cost paid by the dynamic allocator.
    pub dynamic_cost: f64,
    /// Total cost the *optimal static* allocation (computed from the true
    /// profile) would have paid on the same operation sequence.
    pub optimal_static_cost: f64,
    /// Total cost the empty (multi-object ST1) allocation would have paid.
    pub st1_cost: f64,
    /// Total cost the full (multi-object ST2) allocation would have paid.
    pub st2_cost: f64,
    /// Allocation changes the dynamic allocator performed.
    pub reallocations: u64,
}

impl MultiRunReport {
    /// FNV-1a fingerprint of the report's exact bit patterns (float fields
    /// contribute their IEEE-754 bits, not a rounded rendering). Two runs
    /// that are byte-identical — the determinism contract the sweep engine
    /// sells — produce equal digests; any last-bit drift changes them.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.operations as u64,
            self.dynamic_cost.to_bits(),
            self.optimal_static_cost.to_bits(),
            self.st1_cost.to_bits(),
            self.st2_cost.to_bits(),
            self.reallocations,
        ] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Dynamic-over-optimal-static cost ratio (≥ 1 in the stationary case,
    /// up to estimation noise).
    pub fn regret_ratio(&self) -> f64 {
        if approx_eq(self.optimal_static_cost, 0.0) {
            if approx_eq(self.dynamic_cost, 0.0) {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.dynamic_cost / self.optimal_static_cost
        }
    }
}

/// Runs the windowed allocator over `operations` samples from `profile`,
/// comparing against the optimal static allocation and both all-or-nothing
/// statics on the identical sequence.
pub fn simulate_windowed(
    profile: &OperationProfile,
    allocator: &mut WindowedAllocator,
    operations: usize,
    seed: u64,
) -> MultiRunReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let (optimal_static, _) = profile.optimal_allocation();
    let full = Allocation::full(profile.n_objects());
    let mut dynamic_cost = 0.0;
    let mut optimal_static_cost = 0.0;
    let mut st1_cost = 0.0;
    let mut st2_cost = 0.0;
    for _ in 0..operations {
        let op = profile.sample(&mut rng);
        dynamic_cost += allocator.on_operation(op);
        optimal_static_cost += optimal_static.connection_cost(op);
        st1_cost += Allocation::EMPTY.connection_cost(op);
        st2_cost += full.connection_cost(op);
    }
    MultiRunReport {
        operations,
        dynamic_cost,
        optimal_static_cost,
        st1_cost,
        st2_cost,
        reallocations: allocator.reallocations(),
    }
}

/// Like [`simulate_windowed`] but the true profile switches to
/// `second_profile` halfway — the non-stationary case where the dynamic
/// method beats *every* static allocation.
pub fn simulate_windowed_shift(
    first: &OperationProfile,
    second: &OperationProfile,
    allocator: &mut WindowedAllocator,
    operations_per_phase: usize,
    seed: u64,
) -> MultiRunReport {
    assert_eq!(first.n_objects(), second.n_objects());
    let mut rng = StdRng::seed_from_u64(seed);
    let full = Allocation::full(first.n_objects());
    // The best *single* static allocation for the whole run is evaluated
    // post-hoc over all candidates.
    let mut per_alloc: Vec<f64> = ObjectSet::all_subsets(first.n_objects())
        .map(|_| 0.0)
        .collect();
    let mut dynamic_cost = 0.0;
    let mut st1_cost = 0.0;
    let mut st2_cost = 0.0;
    for phase in 0..2 {
        let profile = if phase == 0 { first } else { second };
        for _ in 0..operations_per_phase {
            let op = profile.sample(&mut rng);
            dynamic_cost += allocator.on_operation(op);
            st1_cost += Allocation::EMPTY.connection_cost(op);
            st2_cost += full.connection_cost(op);
            for (i, s) in ObjectSet::all_subsets(first.n_objects()).enumerate() {
                per_alloc[i] += Allocation(s).connection_cost(op);
            }
        }
    }
    let optimal_static_cost = per_alloc.iter().copied().fold(f64::INFINITY, f64::min);
    MultiRunReport {
        operations: operations_per_phase * 2,
        dynamic_cost,
        optimal_static_cost,
        st1_cost,
        st2_cost,
        reallocations: allocator.reallocations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_heavy_x_write_heavy_y() -> OperationProfile {
        OperationProfile::two_objects(8.0, 1.0, 1.0, 1.0, 8.0, 1.0)
    }

    #[test]
    fn allocator_converges_to_the_optimal_static_allocation() {
        let profile = read_heavy_x_write_heavy_y();
        let mut alloc = WindowedAllocator::new(2, 200, 20);
        let report = simulate_windowed(&profile, &mut alloc, 20_000, 3);
        let (optimal, _) = profile.optimal_allocation();
        assert_eq!(alloc.current_allocation(), optimal);
        // Near-optimal cost once converged: within 5% of the optimal static.
        assert!(report.regret_ratio() < 1.05, "{}", report.regret_ratio());
        assert!(report.dynamic_cost < report.st1_cost);
        assert!(report.dynamic_cost < report.st2_cost);
    }

    #[test]
    fn estimates_match_window_contents() {
        let x = ObjectSet::singleton(0);
        let mut alloc = WindowedAllocator::new(1, 4, 100);
        for _ in 0..3 {
            alloc.on_operation(Operation::read(x));
        }
        alloc.on_operation(Operation::write(x));
        let est = alloc.estimate_profile();
        assert!((est.probability(Operation::read(x)) - 0.75).abs() < 1e-12);
        // Window slides: four more writes push the reads out entirely.
        for _ in 0..4 {
            alloc.on_operation(Operation::write(x));
        }
        let est = alloc.estimate_profile();
        assert_eq!(est.probability(Operation::read(x)), 0.0);
    }

    #[test]
    fn recompute_period_limits_reallocations() {
        let profile = read_heavy_x_write_heavy_y();
        let mut eager = WindowedAllocator::new(2, 100, 1);
        let mut lazy = WindowedAllocator::new(2, 100, 500);
        let n = 5_000;
        simulate_windowed(&profile, &mut eager, n, 9);
        simulate_windowed(&profile, &mut lazy, n, 9);
        // The lazy allocator re-optimizes at most n / 500 times.
        assert!(lazy.reallocations() <= (n / 500) as u64);
        assert!(eager.reallocations() >= lazy.reallocations());
    }

    #[test]
    fn dynamic_beats_every_static_on_shifting_profiles() {
        // Phase 1 is read-heavy (replicate everything), phase 2 write-heavy
        // (drop everything): any single static allocation loses a phase.
        let read_heavy = OperationProfile::two_objects(10.0, 10.0, 5.0, 1.0, 1.0, 0.5);
        let write_heavy = OperationProfile::two_objects(1.0, 1.0, 0.5, 10.0, 10.0, 5.0);
        let mut alloc = WindowedAllocator::new(2, 150, 25);
        let report = simulate_windowed_shift(&read_heavy, &write_heavy, &mut alloc, 15_000, 21);
        assert!(
            report.dynamic_cost < report.optimal_static_cost,
            "dynamic {} vs best-static {}",
            report.dynamic_cost,
            report.optimal_static_cost
        );
    }

    #[test]
    fn regret_ratio_edge_cases() {
        let r = MultiRunReport {
            operations: 0,
            dynamic_cost: 0.0,
            optimal_static_cost: 0.0,
            st1_cost: 0.0,
            st2_cost: 0.0,
            reallocations: 0,
        };
        assert_eq!(r.regret_ratio(), 1.0);
        let r = MultiRunReport {
            dynamic_cost: 3.0,
            ..r
        };
        assert_eq!(r.regret_ratio(), f64::INFINITY);
    }

    #[test]
    fn ledger_digest_is_reproducible_across_allocator_instances() {
        // Regression for the map-iteration determinism fix: with the old
        // hash-ordered `counts`, two identical runs in the same process
        // could fold the frequency estimates in different orders (std's
        // hasher is seeded per map instance) and drift in the last bit.
        let profile = read_heavy_x_write_heavy_y();
        let mut a = WindowedAllocator::new(2, 200, 20).with_transition_costs(0.25, 0.125);
        let mut b = WindowedAllocator::new(2, 200, 20).with_transition_costs(0.25, 0.125);
        let ra = simulate_windowed(&profile, &mut a, 10_000, 17);
        let rb = simulate_windowed(&profile, &mut b, 10_000, 17);
        assert_eq!(ra, rb);
        assert_eq!(ra.digest(), rb.digest());
    }

    #[test]
    fn ledger_digest_is_pinned() {
        // The exact fingerprints of two fixed scenarios, pinned so any
        // future change to operation ordering, float folding, or the
        // estimator silently altering the ledger fails loudly. Update only
        // with a changelog entry explaining the behavioural change.
        let profile = read_heavy_x_write_heavy_y();
        let mut alloc = WindowedAllocator::new(2, 200, 20);
        let stationary = simulate_windowed(&profile, &mut alloc, 10_000, 17);
        let read_heavy = OperationProfile::two_objects(10.0, 10.0, 5.0, 1.0, 1.0, 0.5);
        let write_heavy = OperationProfile::two_objects(1.0, 1.0, 0.5, 10.0, 10.0, 5.0);
        let mut alloc = WindowedAllocator::new(2, 150, 25);
        let shifting = simulate_windowed_shift(&read_heavy, &write_heavy, &mut alloc, 5_000, 21);
        assert_eq!(
            (stationary.digest(), shifting.digest()),
            (PINNED_STATIONARY, PINNED_SHIFTING),
            "ledger fingerprints moved: {stationary:?} / {shifting:?}"
        );
    }

    /// Pinned [`MultiRunReport::digest`] of the stationary scenario above.
    const PINNED_STATIONARY: u64 = 0xf61a_8ebe_fa24_185b;
    /// Pinned digest of the shifting scenario above.
    const PINNED_SHIFTING: u64 = 0x0e21_5656_56e9_c1f9;

    #[test]
    fn digest_distinguishes_last_bit_changes() {
        let r = MultiRunReport {
            operations: 1,
            dynamic_cost: 1.0,
            optimal_static_cost: 2.0,
            st1_cost: 3.0,
            st2_cost: 4.0,
            reallocations: 5,
        };
        let mut nudged = r.clone();
        nudged.dynamic_cost = f64::from_bits(r.dynamic_cost.to_bits() + 1);
        assert_ne!(r.digest(), nudged.digest());
    }

    #[test]
    fn parameter_validation() {
        assert!(std::panic::catch_unwind(|| WindowedAllocator::new(2, 0, 5)).is_err());
        assert!(std::panic::catch_unwind(|| WindowedAllocator::new(2, 5, 0)).is_err());
    }
}
