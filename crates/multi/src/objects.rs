//! Objects, object sets, and joint operations (§7.2).
//!
//! The extension lets a single read or write touch a *set* of data items in
//! one interaction ("multiple data items can be remotely read in one
//! connection; similarly for the remote writes"). Sets are bitmasks over a
//! small universe of objects.

use std::fmt;

/// Maximum number of distinct objects a profile may use.
pub const MAX_OBJECTS: usize = 20;

/// A set of data items, as a bitmask over object indices `0..n`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ObjectSet(u32);

impl ObjectSet {
    /// The empty set.
    pub const EMPTY: ObjectSet = ObjectSet(0);

    /// A singleton set `{ object }`.
    pub fn singleton(object: usize) -> Self {
        assert!(object < MAX_OBJECTS, "object index {object} out of range");
        ObjectSet(1 << object)
    }

    /// A set from explicit object indices.
    pub fn from_objects(objects: &[usize]) -> Self {
        objects.iter().fold(ObjectSet::EMPTY, |acc, &o| {
            acc.union(ObjectSet::singleton(o))
        })
    }

    /// A set from a raw bitmask.
    pub fn from_bits(bits: u32) -> Self {
        assert!(bits < (1 << MAX_OBJECTS), "bitmask out of range");
        ObjectSet(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// All `2^n` subsets of the first `n` objects.
    pub fn all_subsets(n: usize) -> impl Iterator<Item = ObjectSet> {
        assert!(n <= MAX_OBJECTS);
        (0u32..(1 << n)).map(ObjectSet)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of objects in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `object` is in the set.
    pub fn contains(self, object: usize) -> bool {
        object < MAX_OBJECTS && (self.0 >> object) & 1 == 1
    }

    /// Set union.
    pub fn union(self, other: ObjectSet) -> ObjectSet {
        ObjectSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: ObjectSet) -> ObjectSet {
        ObjectSet(self.0 & other.0)
    }

    /// Whether the two sets share any object.
    pub fn intersects(self, other: ObjectSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: ObjectSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the member object indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..MAX_OBJECTS).filter(move |&o| self.contains(o))
    }
}

impl fmt::Display for ObjectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, o) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "}}")
    }
}

/// Read or write, the §7.2 operation kinds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum OpKind {
    /// A (possibly joint) read issued at the mobile computer.
    Read,
    /// A (possibly joint) write issued at the stationary computer.
    Write,
}

/// A joint operation over a set of objects.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Operation {
    /// Read or write.
    pub kind: OpKind,
    /// The objects the operation touches (non-empty).
    pub objects: ObjectSet,
}

impl Operation {
    /// A read of `objects`.
    pub fn read(objects: ObjectSet) -> Self {
        assert!(
            !objects.is_empty(),
            "operations must touch at least one object"
        );
        Operation {
            kind: OpKind::Read,
            objects,
        }
    }

    /// A write of `objects`.
    pub fn write(objects: ObjectSet) -> Self {
        assert!(
            !objects.is_empty(),
            "operations must touch at least one object"
        );
        Operation {
            kind: OpKind::Write,
            objects,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            OpKind::Read => "r",
            OpKind::Write => "w",
        };
        write!(f, "{k}{}", self.objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let x = ObjectSet::singleton(0);
        let y = ObjectSet::singleton(1);
        let xy = x.union(y);
        assert_eq!(xy.len(), 2);
        assert!(x.is_subset_of(xy));
        assert!(!xy.is_subset_of(x));
        assert!(xy.intersects(y));
        assert!(!x.intersects(y));
        assert_eq!(xy.intersection(y), y);
        assert!(ObjectSet::EMPTY.is_empty());
        assert!(ObjectSet::EMPTY.is_subset_of(x));
    }

    #[test]
    fn from_objects_and_iter_roundtrip() {
        let s = ObjectSet::from_objects(&[0, 3, 7]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(1));
    }

    #[test]
    fn all_subsets_enumeration() {
        let subsets: Vec<ObjectSet> = ObjectSet::all_subsets(3).collect();
        assert_eq!(subsets.len(), 8);
        assert_eq!(subsets[0], ObjectSet::EMPTY);
        assert_eq!(subsets[7], ObjectSet::from_objects(&[0, 1, 2]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectSet::from_objects(&[0, 2]).to_string(), "{0,2}");
        assert_eq!(Operation::read(ObjectSet::singleton(1)).to_string(), "r{1}");
        assert_eq!(
            Operation::write(ObjectSet::from_objects(&[0, 1])).to_string(),
            "w{0,1}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_operations_rejected() {
        let _ = Operation::read(ObjectSet::EMPTY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn object_index_bounds() {
        let _ = ObjectSet::singleton(MAX_OBJECTS);
    }
}
