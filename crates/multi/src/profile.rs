//! Operation frequency profiles and the §7.2 expected-cost model.
//!
//! The paper classifies operations by (kind, object set) — e.g. for two
//! objects: reads of x only, reads of y only, joint reads of both, and the
//! three write classes — each an independent Poisson stream with its own
//! frequency. Because the merged stream is Poisson, each operation is an
//! independent categorical draw with probability `λ_class / λ`, which is
//! how [`OperationProfile::sample`] generates workloads.
//!
//! Costing (connection model, §7.2): a joint *read* needs one connection
//! iff at least one touched object has no MC replica; a joint *write* needs
//! one connection iff at least one touched object has an MC replica (the
//! update must be propagated). The message-model variant prices those
//! interactions `1 + ω` and `1` respectively, exactly like the
//! single-object model.

use crate::objects::{ObjectSet, OpKind, Operation, MAX_OBJECTS};
use rand::rngs::StdRng;
use rand::RngExt;

/// An allocation scheme: the set of objects replicated at the MC. For two
/// objects the paper's ST1 is `Allocation::EMPTY`, ST2 is `{x, y}`, ST1,2
/// is `{y}`, ST2,1 is `{x}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Allocation(pub ObjectSet);

impl Allocation {
    /// No object replicated (multi-object ST1).
    pub const EMPTY: Allocation = Allocation(ObjectSet::EMPTY);

    /// All of the first `n` objects replicated (multi-object ST2).
    pub fn full(n: usize) -> Allocation {
        Allocation(ObjectSet::from_bits((1u32 << n) - 1))
    }

    /// The connection-model cost of one operation under this allocation
    /// (§7.2): reads pay 1 iff some touched object is missing, writes pay 1
    /// iff some touched object is replicated.
    pub fn connection_cost(&self, op: Operation) -> f64 {
        match op.kind {
            OpKind::Read => {
                if op.objects.is_subset_of(self.0) {
                    0.0
                } else {
                    1.0
                }
            }
            OpKind::Write => {
                if op.objects.intersects(self.0) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Message-model cost of one operation: a remote joint read is one
    /// control request plus one data response (`1 + ω`), a propagated joint
    /// write one data message. (Natural extension; the paper presents §7.2
    /// in the connection model.)
    pub fn message_cost(&self, op: Operation, omega: f64) -> f64 {
        assert!((0.0..=1.0).contains(&omega));
        match op.kind {
            OpKind::Read => {
                if op.objects.is_subset_of(self.0) {
                    0.0
                } else {
                    1.0 + omega
                }
            }
            OpKind::Write => {
                if op.objects.intersects(self.0) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// The frequencies of the joint operation classes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperationProfile {
    n_objects: usize,
    entries: Vec<(Operation, f64)>,
    total_rate: f64,
}

impl OperationProfile {
    /// Builds a profile over `n_objects` objects from per-class Poisson
    /// frequencies.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative, the total rate is zero, an operation
    /// touches objects outside `0..n_objects`, or a class repeats.
    pub fn new(n_objects: usize, entries: Vec<(Operation, f64)>) -> Self {
        assert!((1..=MAX_OBJECTS).contains(&n_objects));
        let universe = ObjectSet::from_bits((1u32 << n_objects) - 1);
        let mut seen = std::collections::HashSet::new();
        let mut total_rate = 0.0;
        for &(op, rate) in &entries {
            assert!(rate >= 0.0, "negative rate for {op}");
            assert!(
                op.objects.is_subset_of(universe),
                "{op} touches unknown objects"
            );
            assert!(seen.insert(op), "duplicate class {op}");
            total_rate += rate;
        }
        assert!(total_rate > 0.0, "profile must have positive total rate");
        OperationProfile {
            n_objects,
            entries,
            total_rate,
        }
    }

    /// The two-object profile of the paper's worked example, with the six
    /// frequencies `(λ_{r,x}, λ_{r,y}, λ_{r,∗}, λ_{w,x}, λ_{w,y}, λ_{w,∗})`
    /// — `∗` denoting the joint operations.
    #[allow(clippy::too_many_arguments)]
    pub fn two_objects(
        lr_x: f64,
        lr_y: f64,
        lr_joint: f64,
        lw_x: f64,
        lw_y: f64,
        lw_joint: f64,
    ) -> Self {
        let x = ObjectSet::singleton(0);
        let y = ObjectSet::singleton(1);
        let xy = x.union(y);
        OperationProfile::new(
            2,
            vec![
                (Operation::read(x), lr_x),
                (Operation::read(y), lr_y),
                (Operation::read(xy), lr_joint),
                (Operation::write(x), lw_x),
                (Operation::write(y), lw_y),
                (Operation::write(xy), lw_joint),
            ],
        )
    }

    /// Number of objects in the universe.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// The classes and their rates.
    pub fn entries(&self) -> &[(Operation, f64)] {
        &self.entries
    }

    /// Total rate λ (the normalizer of the §7.2 cost formulas).
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// Probability that the next operation belongs to `op`'s class.
    pub fn probability(&self, op: Operation) -> f64 {
        self.entries
            .iter()
            .find(|(o, _)| *o == op)
            .map_or(0.0, |(_, r)| r / self.total_rate)
    }

    /// `EXP(alloc)` — the expected connection cost per operation under
    /// `alloc`, the §7.2 objective.
    pub fn expected_cost(&self, alloc: Allocation) -> f64 {
        self.entries
            .iter()
            .map(|&(op, rate)| rate / self.total_rate * alloc.connection_cost(op))
            .sum()
    }

    /// Expected cost per operation under `alloc` in an arbitrary cost
    /// model. The §7.2 presentation uses the connection model; the message
    /// model reweights remote reads by `1 + ω`, which can flip the optimal
    /// allocation (replication becomes more attractive).
    pub fn expected_cost_with(&self, alloc: Allocation, model: mdr_core::CostModel) -> f64 {
        self.entries
            .iter()
            .map(|&(op, rate)| {
                let c = match model {
                    mdr_core::CostModel::Connection => alloc.connection_cost(op),
                    mdr_core::CostModel::Message { omega } => alloc.message_cost(op, omega),
                };
                rate / self.total_rate * c
            })
            .sum()
    }

    /// The optimal static allocation: minimizes [`Self::expected_cost`] by
    /// enumerating all `2^n` allocations (§7.2's "chose the one with the
    /// lowest expected cost", generalized to any finite set of objects).
    pub fn optimal_allocation(&self) -> (Allocation, f64) {
        let best = ObjectSet::all_subsets(self.n_objects)
            .map(|s| {
                let a = Allocation(s);
                (a, self.expected_cost(a))
            })
            .min_by(|(_, c1), (_, c2)| c1.total_cmp(c2));
        let Some(best) = best else {
            unreachable!("at least the empty allocation exists");
        };
        best
    }

    /// [`Self::optimal_allocation`] under an arbitrary cost model.
    pub fn optimal_allocation_with(&self, model: mdr_core::CostModel) -> (Allocation, f64) {
        let best = ObjectSet::all_subsets(self.n_objects)
            .map(|s| {
                let a = Allocation(s);
                (a, self.expected_cost_with(a, model))
            })
            .min_by(|(_, c1), (_, c2)| c1.total_cmp(c2));
        let Some(best) = best else {
            unreachable!("at least the empty allocation exists");
        };
        best
    }

    /// Samples the next operation (categorical by rate).
    pub fn sample(&self, rng: &mut StdRng) -> Operation {
        let mut pick = rng.random::<f64>() * self.total_rate;
        for &(op, rate) in &self.entries {
            pick -= rate;
            if pick < 0.0 {
                return op;
            }
        }
        // Floating-point tail: return the last positive-rate class.
        let tail = self.entries.iter().rev().find(|(_, r)| *r > 0.0);
        let Some(&(op, _)) = tail else {
            panic!("profile has positive total rate");
        };
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn example() -> OperationProfile {
        // λ_{r,x}=4, λ_{r,y}=1, λ_{r,*}=1, λ_{w,x}=1, λ_{w,y}=5, λ_{w,*}=0.5
        OperationProfile::two_objects(4.0, 1.0, 1.0, 1.0, 5.0, 0.5)
    }

    #[test]
    fn paper_cost_formula_st1() {
        // §7.2: "the expected cost for ST1 is (λ_{r,x}+λ_{r,y}+λ_{r,*})/λ".
        let p = example();
        let expected = (4.0 + 1.0 + 1.0) / p.total_rate();
        assert!((p.expected_cost(Allocation::EMPTY) - expected).abs() < 1e-12);
    }

    #[test]
    fn paper_cost_formula_st12() {
        // §7.2: "that of ST1,2 is (λ_{r,x}+λ_{w,y}+λ_{r,*}+λ_{w,*})/λ" — x
        // one copy (not replicated), y two copies (replicated).
        let p = example();
        let st12 = Allocation(ObjectSet::singleton(1));
        let expected = (4.0 + 5.0 + 1.0 + 0.5) / p.total_rate();
        assert!((p.expected_cost(st12) - expected).abs() < 1e-12);
    }

    #[test]
    fn st2_costs_all_writes() {
        let p = example();
        let st2 = Allocation::full(2);
        let expected = (1.0 + 5.0 + 0.5) / p.total_rate();
        assert!((p.expected_cost(st2) - expected).abs() < 1e-12);
    }

    #[test]
    fn optimal_allocation_beats_all_four_schemes() {
        let p = example();
        let (best, cost) = p.optimal_allocation();
        for s in ObjectSet::all_subsets(2) {
            assert!(cost <= p.expected_cost(Allocation(s)) + 1e-12);
        }
        // x is read-heavy (4r/1w) → replicate; y is write-heavy (1r/5w) →
        // don't: the best scheme is ST2,1 = {x}.
        assert_eq!(best, Allocation(ObjectSet::singleton(0)));
    }

    #[test]
    fn joint_operations_make_allocation_non_separable() {
        // Per-object reasoning: y looks balanced (2r vs 2w) so replicating
        // it seems neutral; but joint reads of {x,y} already pay for x's
        // absence... Build a case where the joint classes flip the
        // per-object decision.
        let x = ObjectSet::singleton(0);
        let y = ObjectSet::singleton(1);
        let xy = x.union(y);
        // Reads mostly joint; writes only on x.
        let p = OperationProfile::new(
            2,
            vec![
                (Operation::read(xy), 10.0),
                (Operation::write(x), 4.0),
                (Operation::read(y), 0.5),
                (Operation::write(y), 1.0),
            ],
        );
        let (best, _) = p.optimal_allocation();
        // Joint reads dominate: both objects must be replicated even though
        // x alone is write-heavy relative to its solo reads (0 solo reads,
        // 4 writes).
        assert_eq!(best, Allocation::full(2));
    }

    #[test]
    fn message_costs_extend_connection_costs() {
        let a = Allocation(ObjectSet::singleton(0));
        let read_miss = Operation::read(ObjectSet::from_objects(&[0, 1]));
        assert_eq!(a.connection_cost(read_miss), 1.0);
        assert_eq!(a.message_cost(read_miss, 0.25), 1.25);
        let read_hit = Operation::read(ObjectSet::singleton(0));
        assert_eq!(a.message_cost(read_hit, 0.25), 0.0);
        let write_hit = Operation::write(ObjectSet::from_objects(&[0, 1]));
        assert_eq!(a.message_cost(write_hit, 0.25), 1.0);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let p = example();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut count_rx = 0usize;
        let rx = Operation::read(ObjectSet::singleton(0));
        for _ in 0..n {
            if p.sample(&mut rng) == rx {
                count_rx += 1;
            }
        }
        let frac = count_rx as f64 / f64::from(n);
        assert!((frac - p.probability(rx)).abs() < 0.01, "{frac}");
    }

    #[test]
    fn profile_validation() {
        let x = ObjectSet::singleton(0);
        assert!(std::panic::catch_unwind(|| {
            OperationProfile::new(1, vec![(Operation::read(x), -1.0)])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            OperationProfile::new(1, vec![(Operation::read(x), 0.0)])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            OperationProfile::new(
                1,
                vec![(Operation::read(x), 1.0), (Operation::read(x), 2.0)],
            )
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            OperationProfile::new(1, vec![(Operation::read(ObjectSet::singleton(1)), 1.0)])
        })
        .is_err());
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use mdr_core::CostModel;

    #[test]
    fn connection_model_dispatch_matches_the_section_7_2_formula() {
        let p = OperationProfile::two_objects(4.0, 1.0, 1.0, 1.0, 5.0, 0.5);
        for s in ObjectSet::all_subsets(2) {
            let a = Allocation(s);
            assert!(
                (p.expected_cost_with(a, CostModel::Connection) - p.expected_cost(a)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn message_model_can_flip_the_optimal_allocation() {
        // One object: 5 reads vs 5.5 writes. Connection model: a replica
        // costs 5.5 writes vs 5 remote reads ⇒ don't replicate. Message
        // model at ω = 0.5: remote reads cost 1.5 each (7.5 total) vs 5.5
        // propagated writes ⇒ replicate.
        let x = ObjectSet::singleton(0);
        let p = OperationProfile::new(
            1,
            vec![(Operation::read(x), 5.0), (Operation::write(x), 5.5)],
        );
        let (conn_best, _) = p.optimal_allocation_with(CostModel::Connection);
        assert_eq!(conn_best, Allocation::EMPTY);
        let (msg_best, _) = p.optimal_allocation_with(CostModel::message(0.5));
        assert_eq!(msg_best, Allocation(x));
        // The flip point is the single-object static crossing
        // (1+ω)(1−θ) = θ ⇔ θ = (1+ω)/(2+ω): here θ = 5.5/10.5 ≈ 0.524,
        // below the ω = 0.5 boundary 0.6.
        let theta = 5.5 / 10.5;
        assert!(theta < mdr_analysis_boundary(0.5));
    }

    // The ST1/ST2 message-model crossing for the single-object sanity
    // check (re-derived locally to avoid a dev-dependency cycle on
    // mdr-analysis): EXP_ST1 = (1+ω)(1−θ) equals EXP_ST2 = θ at
    // θ = (1+ω)/(2+ω).
    fn mdr_analysis_boundary(omega: f64) -> f64 {
        (1.0 + omega) / (2.0 + omega)
    }

    #[test]
    fn higher_omega_only_ever_favours_replication() {
        // Monotonicity: increasing ω increases the cost of every allocation
        // that leaves reads remote, and leaves fully-replicating costs
        // unchanged.
        let p = OperationProfile::two_objects(3.0, 2.0, 1.0, 2.0, 3.0, 1.0);
        for s in ObjectSet::all_subsets(2) {
            let a = Allocation(s);
            let lo = p.expected_cost_with(a, CostModel::message(0.1));
            let hi = p.expected_cost_with(a, CostModel::message(0.9));
            assert!(hi >= lo - 1e-12, "{a:?}");
        }
        let full = Allocation::full(2);
        assert!(
            (p.expected_cost_with(full, CostModel::message(0.1))
                - p.expected_cost_with(full, CostModel::message(0.9)))
            .abs()
                < 1e-12,
            "a full allocation sends no control messages"
        );
    }
}
