//! The naive per-object baseline: one independent SWk-style window per
//! object.
//!
//! §7.2's point is that joint operations *couple* the allocation decisions:
//! a joint read pays unless **every** touched object is replicated, and a
//! joint write pays if **any** is. Running the single-object sliding window
//! independently per object ignores that coupling — the same joint read is
//! counted as a benefit by every object it touches, while each write is
//! debited separately. This module implements the baseline so the ablation
//! (experiment E14) can quantify how much the paper's joint expected-cost
//! optimization actually buys.

use crate::objects::{OpKind, Operation};
use crate::profile::Allocation;
use mdr_core::{Request, RequestWindow};

/// One independent majority window per object; an object is replicated iff
/// reads hold the majority of the operations that touched it.
#[derive(Debug, Clone)]
pub struct PerObjectWindows {
    windows: Vec<RequestWindow>,
}

impl PerObjectWindows {
    /// Creates the baseline over `n_objects` objects with window size `k`
    /// (odd). Cold start: all windows full of writes (no replicas).
    pub fn new(n_objects: usize, k: usize) -> Self {
        PerObjectWindows {
            windows: (0..n_objects)
                .map(|_| RequestWindow::filled(k, Request::Write))
                .collect(),
        }
    }

    /// The current allocation implied by the per-object majorities.
    pub fn allocation(&self) -> Allocation {
        let mut bits = 0u32;
        for (i, w) in self.windows.iter().enumerate() {
            if w.majority_reads() {
                bits |= 1 << i;
            }
        }
        Allocation(crate::objects::ObjectSet::from_bits(bits))
    }

    /// Processes one operation: charges it under the pre-update allocation
    /// (mirroring the single-object SWk cost semantics) and slides the
    /// window of every touched object. Returns the connection cost.
    pub fn on_operation(&mut self, op: Operation) -> f64 {
        let cost = self.allocation().connection_cost(op);
        let bit = match op.kind {
            OpKind::Read => Request::Read,
            OpKind::Write => Request::Write,
        };
        for obj in op.objects.iter() {
            self.windows[obj].push(bit);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::ObjectSet;
    use crate::profile::OperationProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn replicates_objects_with_read_majorities() {
        let x = ObjectSet::singleton(0);
        let y = ObjectSet::singleton(1);
        let mut p = PerObjectWindows::new(2, 3);
        for _ in 0..4 {
            p.on_operation(Operation::read(x));
            p.on_operation(Operation::write(y));
        }
        let alloc = p.allocation();
        assert!(alloc.0.contains(0), "read-heavy x replicated");
        assert!(!alloc.0.contains(1), "write-heavy y not replicated");
    }

    #[test]
    fn joint_operations_update_every_touched_window() {
        let xy = ObjectSet::from_objects(&[0, 1]);
        let mut p = PerObjectWindows::new(2, 3);
        for _ in 0..4 {
            p.on_operation(Operation::read(xy));
        }
        let alloc = p.allocation();
        assert!(alloc.0.contains(0) && alloc.0.contains(1));
    }

    #[test]
    fn coupling_blind_spot_the_e14_construction() {
        // r{x,y}: 5, w{x}: 4, w{y}: 4 — each object sees reads (5) beat its
        // writes (4), so the baseline replicates both; but then the 8 writes
        // pay while only 5 reads are saved. The joint optimum is ∅.
        let profile = OperationProfile::new(
            2,
            vec![
                (Operation::read(ObjectSet::from_objects(&[0, 1])), 5.0),
                (Operation::write(ObjectSet::singleton(0)), 4.0),
                (Operation::write(ObjectSet::singleton(1)), 4.0),
            ],
        );
        let (joint_best, joint_cost) = profile.optimal_allocation();
        assert_eq!(joint_best, Allocation::EMPTY);
        // The baseline replicates both objects most of the time (each
        // window's read fraction is 5/9 > 1/2 in expectation, so the
        // majority fluctuates but favours replication)…
        let mut baseline = PerObjectWindows::new(2, 31);
        let mut rng = StdRng::seed_from_u64(14);
        let mut cost = 0.0;
        let mut fully_replicated = 0usize;
        let n = 40_000;
        for _ in 0..n {
            cost += baseline.on_operation(profile.sample(&mut rng));
            if baseline.allocation() == Allocation::full(2) {
                fully_replicated += 1;
            }
        }
        assert!(
            fully_replicated as f64 > 0.4 * f64::from(n),
            "baseline should hold the (wrong) full allocation much of the time: {fully_replicated}/{n}"
        );
        // …and pays well above the joint optimum.
        let per_op = cost / f64::from(n);
        assert!(
            per_op > joint_cost * 1.3,
            "baseline {per_op} should be well above the joint optimum {joint_cost}"
        );
    }

    #[test]
    fn cold_start_has_no_replicas() {
        let p = PerObjectWindows::new(3, 5);
        assert_eq!(p.allocation(), Allocation::EMPTY);
    }
}
