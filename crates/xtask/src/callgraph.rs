//! Call-site extraction and name-based call-graph resolution.
//!
//! Within each function body the extractor records plain calls
//! (`helper(…)`, with their immediate `Path::` qualifier when present)
//! and method calls (`.step(…)`). Resolution is by name against the
//! workspace symbol table: a qualified call binds to symbols owned by
//! that type when any exist, otherwise — like every method call — to
//! *every* symbol with a matching name. The result is a deliberate
//! over-approximation: reachability built on it can only over-report,
//! never miss a path, which is the right failure mode for a determinism
//! audit.

use crate::lexer::{Token, TokenKind};
use crate::symbols::Symbol;
use std::collections::BTreeMap;

/// One call occurrence inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Callee function/method name.
    pub name: String,
    /// Immediate path qualifier (`Simulation::new` → `Simulation`), if
    /// syntactically present.
    pub qualifier: Option<String>,
    /// 1-based source line of the call.
    pub line: usize,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "fn", "let", "in", "move", "unsafe",
    "as", "where", "impl", "dyn", "ref", "mut", "box", "await",
];

/// Extracts the call sites inside `tokens[body.0..body.1]`.
pub(crate) fn calls_in(tokens: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = body;
    for t in start..end.min(tokens.len()).saturating_sub(1) {
        let tok = &tokens[t];
        if tok.kind != TokenKind::Ident || !tokens[t + 1].is_punct("(") {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        let prev = t.checked_sub(1).map(|p| &tokens[p]);
        // `fn name(` is a definition (nested fn / closure parameter list
        // never looks like this), and `ident!(` is a macro invocation —
        // its *arguments* still lex as body tokens, so calls inside
        // macros are picked up individually.
        if prev.is_some_and(|p| p.is_ident("fn") || p.is_punct("!")) {
            continue;
        }
        let (name, qualifier) = if prev.is_some_and(|p| p.is_punct(".")) {
            (tok.text.clone(), None)
        } else if prev.is_some_and(|p| p.is_punct("::")) && t >= 2 {
            let q = &tokens[t - 2];
            let qualifier = (q.kind == TokenKind::Ident).then(|| q.text.clone());
            (tok.text.clone(), qualifier)
        } else {
            (tok.text.clone(), None)
        };
        out.push(CallSite {
            name,
            qualifier,
            line: tok.line,
        });
    }
    out
}

/// An index over the workspace symbol table for name-based resolution.
pub(crate) struct Resolver {
    /// name → indices of symbols bearing it.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Resolver {
    /// Builds the index.
    pub(crate) fn new(symbols: &[Symbol]) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, s) in symbols.iter().enumerate() {
            by_name.entry(s.name.clone()).or_default().push(i);
        }
        Resolver { by_name }
    }

    /// Resolves one call site to candidate symbol indices.
    pub(crate) fn resolve(&self, symbols: &[Symbol], call: &CallSite) -> Vec<usize> {
        let Some(candidates) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        if let Some(q) = &call.qualifier {
            let owned: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| symbols[i].owner.as_deref() == Some(q.as_str()))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
        }
        candidates.clone()
    }
}
