//! `cargo xtask audit` — reachability-based determinism audit.
//!
//! The pass extracts every function symbol in the workspace, builds a
//! name-resolved call graph, computes the set of functions reachable
//! from the determinism-critical roots (`Simulation::run_*`,
//! `SweepGrid::run_*`, `parallel_map`, the `mdr-verify` checker entry
//! points, and every public seed-taking function), and then checks each
//! reachable body against the determinism rules:
//!
//! * `wall-clock` — no `SystemTime` / `Instant`: replayable runs must
//!   take time only from the simulated clock.
//! * `ambient-rng` — no `thread_rng` / `from_entropy` / `OsRng` /
//!   `rand::random`: all randomness must flow from an explicit seed.
//! * `unblessed-rng` — RNG construction (`seed_from_u64` / `from_seed` /
//!   `from_rng`) is only legitimate when fed by the SplitMix64
//!   `derive_seed` helpers; every construction site must be allowlisted
//!   with a justification naming its seed stream.
//! * `map-iteration` — no iteration over `HashMap`/`HashSet`-typed
//!   bindings: hash iteration order varies across processes and would
//!   desynchronize serial and parallel sweep ledgers.
//!
//! A separate workspace-wide pass, `deprecated-use`, reports internal
//! (non-test) calls to `#[deprecated]` symbols regardless of
//! reachability.
//!
//! Findings carry the full root→…→function call chain so a reader can
//! see *why* a helper is considered determinism-critical. Triaged
//! exceptions live in `crates/xtask/audit.allow`.

use crate::callgraph::{calls_in, Resolver};
use crate::lexer::TokenKind;
use crate::symbols::{extract, FileSymbols, Symbol, ITER_METHODS};
use std::collections::BTreeMap;
use std::fmt;

/// One audit finding.
#[derive(Debug, Clone)]
pub(crate) struct Finding {
    /// Rule id (`wall-clock`, `ambient-rng`, `unblessed-rng`,
    /// `map-iteration`, `deprecated-use`).
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Id of the containing function symbol (the allowlist key).
    pub symbol: String,
    /// Root→…→function chain that makes the symbol reachable.
    pub chain: String,
    /// Human-readable description of the offense.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: audit[{}] {} in `{}` (reachable via {})",
            self.file, self.line, self.rule, self.detail, self.symbol, self.chain
        )
    }
}

/// One triaged exception from `audit.allow`.
#[derive(Debug, Clone)]
pub(crate) struct AllowEntry {
    /// Rule the exception applies to.
    pub rule: String,
    /// Symbol id the exception applies to.
    pub symbol: String,
    /// Mandatory justification.
    pub note: String,
}

/// Parses the allowlist format: one `rule symbol-id # justification`
/// per line; blank lines and full-line `#` comments are skipped. The
/// justification is mandatory — an exception without a reason is a
/// finding waiting to be forgotten.
pub(crate) fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, note) = match line.split_once('#') {
            Some((h, c)) => (h.trim(), c.trim()),
            None => (line, ""),
        };
        let mut parts = head.split_whitespace();
        let (Some(rule), Some(symbol), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "audit.allow:{}: expected `rule symbol-id # justification`",
                n + 1
            ));
        };
        if note.is_empty() {
            return Err(format!(
                "audit.allow:{}: entry `{rule} {symbol}` is missing its justification comment",
                n + 1
            ));
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            symbol: symbol.to_string(),
            note: note.to_string(),
        });
    }
    Ok(entries)
}

/// Result of one audit run.
#[derive(Debug)]
pub(crate) struct AuditReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// One line per allowlist suppression: `rule symbol — justification`.
    pub suppressed: Vec<String>,
    /// Allowlist entries that matched nothing — stale triage.
    pub unused_allow: Vec<String>,
    /// Total function symbols extracted.
    pub symbols: usize,
    /// Symbols reachable from the determinism roots.
    pub reachable: usize,
}

/// Identifiers whose mere mention in a reachable body is a wall-clock
/// dependency.
const WALL_CLOCK_IDENTS: &[&str] = &["SystemTime", "Instant"];

/// Identifiers that pull entropy from the environment.
const AMBIENT_RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// RNG construction methods — legitimate only when fed by
/// `derive_seed`, which the allowlist certifies per site.
const RNG_CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed", "from_rng"];

/// The verify-crate entry points treated as audit roots.
const VERIFY_ROOTS: &[&str] = &["check", "check_state", "sweep", "faulty_sweep", "arq_sweep"];

/// Runs the audit over in-memory `(path, source)` pairs.
pub(crate) fn audit_sources(files: &[(String, String)], allow: &[AllowEntry]) -> AuditReport {
    let parsed: Vec<FileSymbols> = files.iter().map(|(p, s)| extract(p, s)).collect();

    // Flatten the symbol table; remember which file each symbol lives in.
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut sym_file: Vec<usize> = Vec::new();
    for (fi, fs) in parsed.iter().enumerate() {
        for s in &fs.symbols {
            symbols.push(s.clone());
            sym_file.push(fi);
        }
    }
    let resolver = Resolver::new(&symbols);

    // Roots: the protocol/sweep drivers, the parallel fan-out, the
    // verify checker, and every public seeded entry point (this is what
    // extends coverage into mdr-core / mdr-multi / mdr-adversary).
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in symbols.iter().enumerate() {
        if s.is_test {
            continue;
        }
        let run_owner = matches!(s.owner.as_deref(), Some("Simulation" | "SweepGrid"));
        let is_root = (run_owner && s.name.starts_with("run"))
            || s.name == "parallel_map"
            || (s.file.starts_with("crates/verify/src/")
                && VERIFY_ROOTS.contains(&s.name.as_str()))
            || (s.is_pub && s.takes_seed);
        if is_root {
            roots.push(i);
        }
    }

    // BFS over name-resolved call edges; `parent` doubles as the
    // visited set and reconstructs chains.
    let mut parent: Vec<Option<usize>> = vec![None; symbols.len()];
    let mut seen: Vec<bool> = vec![false; symbols.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &r in &roots {
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(cur) = queue.pop_front() {
        let Some(body) = symbols[cur].body else {
            continue;
        };
        let fs = &parsed[sym_file[cur]];
        for call in calls_in(&fs.tokens, body) {
            for cand in resolver.resolve(&symbols, &call) {
                if symbols[cand].is_test || seen[cand] {
                    continue;
                }
                seen[cand] = true;
                parent[cand] = Some(cur);
                queue.push_back(cand);
            }
        }
    }
    let reachable = seen.iter().filter(|s| **s).count();

    let chain_of = |mut i: usize| -> String {
        let mut ids = vec![symbols[i].id.clone()];
        while let Some(p) = parent[i] {
            ids.push(symbols[p].id.clone());
            i = p;
        }
        ids.reverse();
        ids.join(" -> ")
    };

    let mut findings: Vec<Finding> = Vec::new();

    // Determinism rules over every reachable body.
    for (i, s) in symbols.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        let Some(body) = s.body else { continue };
        let fs = &parsed[sym_file[i]];
        let chain = chain_of(i);
        body_findings(fs, s, body, &chain, &mut findings);
    }

    // Workspace-wide deprecated-use pass: internal callers of
    // `#[deprecated]` symbols, reachable or not.
    for (i, s) in symbols.iter().enumerate() {
        if s.is_test {
            continue;
        }
        let Some(body) = s.body else { continue };
        let fs = &parsed[sym_file[i]];
        for call in calls_in(&fs.tokens, body) {
            let cands = resolver.resolve(&symbols, &call);
            if cands.is_empty() || !cands.iter().all(|&c| symbols[c].deprecated) {
                continue;
            }
            let target = &symbols[cands[0]];
            findings.push(Finding {
                rule: "deprecated-use",
                file: s.file.clone(),
                line: call.line,
                symbol: s.id.clone(),
                chain: s.id.clone(),
                detail: format!(
                    "call to deprecated `{}` (declared at {}:{})",
                    target.id, target.file, target.line
                ),
            });
        }
    }

    // Apply the allowlist.
    let mut used = vec![false; allow.len()];
    let mut suppressed = Vec::new();
    findings.retain(|f| {
        let hit = allow
            .iter()
            .position(|a| a.rule == f.rule && a.symbol == f.symbol);
        if let Some(k) = hit {
            used[k] = true;
            suppressed.push(format!(
                "{} {} — {}",
                allow[k].rule, allow[k].symbol, allow[k].note
            ));
            false
        } else {
            true
        }
    });
    let unused_allow: Vec<String> = allow
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| format!("{} {}", a.rule, a.symbol))
        .collect();

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.detail).cmp(&(&b.file, b.line, b.rule, &b.detail))
    });

    AuditReport {
        findings,
        suppressed,
        unused_allow,
        symbols: symbols.len(),
        reachable,
    }
}

/// Applies the per-body determinism rules and appends findings.
fn body_findings(
    fs: &FileSymbols,
    sym: &Symbol,
    body: (usize, usize),
    chain: &str,
    out: &mut Vec<Finding>,
) {
    let tokens = &fs.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    let mut push = |rule: &'static str, line: usize, detail: String| {
        out.push(Finding {
            rule,
            file: sym.file.clone(),
            line,
            symbol: sym.id.clone(),
            chain: chain.to_string(),
            detail,
        });
    };
    for t in start..end {
        let tok = &tokens[t];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        if WALL_CLOCK_IDENTS.contains(&name) {
            push("wall-clock", tok.line, format!("wall-clock type `{name}`"));
        }
        if AMBIENT_RNG_IDENTS.contains(&name) {
            push("ambient-rng", tok.line, format!("ambient entropy `{name}`"));
        }
        if name == "random"
            && t >= 2
            && tokens[t - 1].is_punct("::")
            && tokens[t - 2].is_ident("rand")
        {
            push(
                "ambient-rng",
                tok.line,
                "ambient `rand::random`".to_string(),
            );
        }
        if RNG_CONSTRUCTORS.contains(&name) && t > 0 && tokens[t - 1].is_punct("::") {
            push(
                "unblessed-rng",
                tok.line,
                format!("RNG construction `{name}`"),
            );
        }
        // Map-iteration: `name.iter()`-style calls and `for … in
        // [&][mut] [self.]name` loops over hash-typed bindings.
        if fs.hash_names.binary_search(&tok.text).is_ok() {
            if tokens.get(t + 1).is_some_and(|n| n.is_punct("."))
                && tokens
                    .get(t + 2)
                    .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                && tokens.get(t + 3).is_some_and(|p| p.is_punct("("))
            {
                push(
                    "map-iteration",
                    tok.line,
                    format!(
                        "hash-order iteration `{}.{}()`",
                        tok.text,
                        tokens[t + 2].text
                    ),
                );
            }
            let mut b = t;
            if b >= 2 && tokens[b - 1].is_punct(".") && tokens[b - 2].is_ident("self") {
                b -= 2;
            }
            while b > 0 && (tokens[b - 1].is_punct("&") || tokens[b - 1].is_ident("mut")) {
                b -= 1;
            }
            if b > 0 && tokens[b - 1].is_ident("in") {
                push(
                    "map-iteration",
                    tok.line,
                    format!("hash-order `for … in {}`", tok.text),
                );
            }
        }
    }
}

/// Summary map of deprecated symbols to their internal (non-test)
/// caller counts — the dead/deprecated-symbol report.
pub(crate) fn deprecated_symbols(files: &[(String, String)]) -> BTreeMap<String, usize> {
    let parsed: Vec<FileSymbols> = files.iter().map(|(p, s)| extract(p, s)).collect();
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut sym_file: Vec<usize> = Vec::new();
    for (fi, fs) in parsed.iter().enumerate() {
        for s in &fs.symbols {
            symbols.push(s.clone());
            sym_file.push(fi);
        }
    }
    let resolver = Resolver::new(&symbols);
    let mut out: BTreeMap<String, usize> = symbols
        .iter()
        .filter(|s| s.deprecated)
        .map(|s| (s.id.clone(), 0usize))
        .collect();
    for (i, s) in symbols.iter().enumerate() {
        if s.is_test {
            continue;
        }
        let Some(body) = s.body else { continue };
        for call in calls_in(&parsed[sym_file[i]].tokens, body) {
            // Same conservative criterion as the findings pass: a call
            // counts only when every same-named candidate is deprecated
            // (or the qualified lookup resolved it uniquely), so common
            // names like `new` don't inflate the tally.
            let cands = resolver.resolve(&symbols, &call);
            if cands.is_empty() || !cands.iter().all(|&c| symbols[c].deprecated) {
                continue;
            }
            for c in cands {
                if let Some(n) = out.get_mut(&symbols[c].id) {
                    *n += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        match std::fs::read_to_string(dir.join(name)) {
            Ok(src) => src,
            Err(e) => panic!("fixture {name}: {e}"),
        }
    }

    fn audit_fixture(name: &str, allow: &[AllowEntry]) -> AuditReport {
        let files = vec![(format!("crates/demo/src/{name}"), fixture(name))];
        audit_sources(&files, allow)
    }

    fn rules(report: &AuditReport) -> Vec<&str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn every_rule_fires_on_the_positive_fixture() {
        let report = audit_fixture("audit_findings.rs", &[]);
        let rules = rules(&report);
        let count = |r: &str| rules.iter().filter(|x| **x == r).count();
        assert_eq!(count("wall-clock"), 1, "{rules:?}");
        assert_eq!(
            count("ambient-rng"),
            2,
            "thread_rng + rand::random: {rules:?}"
        );
        assert_eq!(count("unblessed-rng"), 1, "{rules:?}");
        // `for … in &counts`, `counts.values()` and its enclosing
        // `for … in` receiver each flag.
        assert_eq!(count("map-iteration"), 3, "{rules:?}");
        assert_eq!(count("deprecated-use"), 1, "{rules:?}");
    }

    #[test]
    fn findings_reach_through_the_call_graph() {
        // The map-iteration offenses live in the *private* `helper`,
        // reachable only via the seeded root; the chain must say so.
        let report = audit_fixture("audit_findings.rs", &[]);
        let finding = report
            .findings
            .iter()
            .find(|f| f.rule == "map-iteration")
            .expect("map-iteration fires");
        assert!(finding.symbol.ends_with("::helper"), "{}", finding.symbol);
        assert!(
            finding.chain.contains("run_cell") && finding.chain.contains("->"),
            "chain should walk root -> helper: {}",
            finding.chain
        );
    }

    #[test]
    fn the_clean_fixture_is_clean() {
        let report = audit_fixture("audit_clean.rs", &[]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        // The unreachable helper and the test module exist but are not
        // audited: reachable < total.
        assert!(report.reachable < report.symbols);
    }

    #[test]
    fn allowlist_suppresses_exactly_its_entries() {
        let allow = vec![AllowEntry {
            rule: "unblessed-rng".to_string(),
            symbol: "demo::audit_findings::run_cell".to_string(),
            note: "fixture triage".to_string(),
        }];
        let report = audit_fixture("audit_findings.rs", &allow);
        assert!(!rules(&report).contains(&"unblessed-rng"));
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.unused_allow.is_empty());
        // Wrong symbol: nothing matches, entry is reported stale.
        let stale = vec![AllowEntry {
            rule: "unblessed-rng".to_string(),
            symbol: "demo::other::nope".to_string(),
            note: "stale".to_string(),
        }];
        let report = audit_fixture("audit_findings.rs", &stale);
        assert!(rules(&report).contains(&"unblessed-rng"));
        assert_eq!(report.unused_allow.len(), 1);
    }

    #[test]
    fn allowlist_requires_a_justification() {
        assert!(parse_allowlist("unblessed-rng a::b # seeded via derive_seed").is_ok());
        assert!(parse_allowlist("unblessed-rng a::b").is_err());
        assert!(parse_allowlist("unblessed-rng a::b #   ").is_err());
        assert!(parse_allowlist("too many words here # note").is_err());
        // Blank lines and full-line comments are fine.
        let parsed = parse_allowlist("# header\n\nwall-clock x::y # reason\n");
        assert_eq!(parsed.map(|v| v.len()), Ok(1));
    }

    #[test]
    fn deprecated_pass_counts_internal_users() {
        let files = vec![(
            "crates/demo/src/audit_findings.rs".to_string(),
            fixture("audit_findings.rs"),
        )];
        let map = deprecated_symbols(&files);
        assert_eq!(map.len(), 1);
        let users = map.values().copied().next();
        assert_eq!(users, Some(1), "exactly the `caller` site");
    }
}
