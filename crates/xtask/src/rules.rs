//! The five workspace lint rules, applied to the token stream produced by
//! [`crate::lexer`].
//!
//! 1. **float-eq** — no raw `f64` `==`/`!=` in cost-accounting code; the
//!    epsilon helpers (`mdr_core::approx_eq`) or `f64::total_cmp` are the
//!    sanctioned comparisons. Heuristic: an equality operator with a float
//!    literal, or an identifier named like a cost quantity, in its operand
//!    window.
//! 2. **wire-construction** — `WireMessage` values are constructed only in
//!    `crates/sim/src/wire.rs`; everywhere else must use the constructor
//!    helpers so invariants (e.g. "the window piggybacks only on allocating
//!    responses") hold by construction. Pattern matches are fine.
//! 3. **paper-ref** — every public item in `mdr-core` and `mdr-analysis`
//!    carries a doc comment citing the paper (a `§` section, an `Eq.`, or a
//!    `Theorem`), keeping the reproduction navigable against the source.
//! 4. **no-unwrap** — no `.unwrap()` / `.expect()` in non-test library
//!    code; use `let … else` with a described panic, or propagate.
//! 5. **timeout-constant** — no identifier named like a timeout bound to a
//!    raw numeric literal outside `crates/sim/src/faults.rs`: every
//!    retransmission-timing knob goes through `ArqConfig`, so one type
//!    owns validation, backoff, and the determinism story. Reading a
//!    timeout field or threading one through a parameter is fine; pinning
//!    one to a number anywhere else is not.
//!
//! Test modules (`#[cfg(test)]`, `#[test]`) are exempt from rules 1, 2, 4
//! and 5; binaries (`main.rs`, `src/bin/`) are exempt from rule 4.

use crate::lexer::{in_ranges, lex, test_ranges, Token, TokenKind};
use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone)]
pub(crate) struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file participates in the lint pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FileContext<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
}

impl FileContext<'_> {
    fn is_wire_home(&self) -> bool {
        self.path == "crates/sim/src/wire.rs"
    }

    fn needs_paper_refs(&self) -> bool {
        self.path.starts_with("crates/core/src/") || self.path.starts_with("crates/analysis/src/")
    }

    fn is_binary(&self) -> bool {
        self.path.ends_with("/main.rs") || self.path.contains("/src/bin/")
    }

    fn is_arq_home(&self) -> bool {
        self.path == "crates/sim/src/faults.rs"
    }
}

/// Lints one file's source, returning every finding.
pub(crate) fn lint_source(ctx: FileContext<'_>, src: &str) -> Vec<Violation> {
    let tokens = lex(src);
    let exempt = test_ranges(&tokens);
    let mut out = Vec::new();
    check_float_eq(&ctx, &tokens, &exempt, &mut out);
    if !ctx.is_wire_home() {
        check_wire_construction(&ctx, &tokens, &exempt, &mut out);
    }
    if ctx.needs_paper_refs() {
        check_paper_refs(&ctx, &tokens, &exempt, &mut out);
    }
    if !ctx.is_binary() {
        check_unwrap(&ctx, &tokens, &exempt, &mut out);
    }
    if !ctx.is_arq_home() {
        check_timeout_constant(&ctx, &tokens, &exempt, &mut out);
    }
    out
}

/// Lints a file on disk; path must be workspace-relative.
pub(crate) fn lint_file(root: &Path, rel: &str) -> Result<Vec<Violation>, String> {
    let src =
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
    Ok(lint_source(FileContext { path: rel }, &src))
}

/// Identifiers that name accumulated-cost quantities: a raw equality on
/// one of these is (almost certainly) a float comparison in an accounting
/// path. Matched against the final `snake_case` segment.
const COSTLY_NAMES: &[&str] = &["cost", "omega", "theta", "ratio", "price", "latency"];

fn names_cost_quantity(ident: &str) -> bool {
    // PascalCase identifiers are type names (e.g. `CostModel`), not values.
    if ident.chars().next().is_some_and(char::is_uppercase) {
        return false;
    }
    let last = ident.rsplit('_').next().unwrap_or(ident);
    COSTLY_NAMES.contains(&last)
}

/// Tokens that delimit an equality operand window: beyond these, a
/// neighboring token no longer belongs to the compared expression.
fn is_operand_boundary(t: &Token) -> bool {
    (t.kind == TokenKind::Punct
        && matches!(
            t.text.as_str(),
            ";" | "," | "{" | "}" | "&&" | "||" | "(" | ")" | "=" | "=>" | "[" | ":"
        ))
        || (t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "if" | "else" | "match" | "while" | "return"
            ))
}

fn check_float_eq(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    exempt: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || in_ranges(exempt, i) {
            continue;
        }
        let mut suspicious = None;
        // Scan each side of the operator out to the operand boundary. An
        // identifier only counts when it terminates its field chain — a
        // cost-named receiver of a further call (`latency.len()`) is no
        // longer a float.
        let left_start = tokens[..i]
            .iter()
            .rposition(is_operand_boundary)
            .map_or(0, |p| p + 1);
        let right_end = tokens[i + 1..]
            .iter()
            .position(is_operand_boundary)
            .map_or(tokens.len(), |p| i + 1 + p);
        for idx in (left_start..i).chain(i + 1..right_end) {
            let side = &tokens[idx];
            let chained = tokens
                .get(idx + 1)
                .is_some_and(|n| n.is_punct(".") || n.is_punct("("));
            if side.kind == TokenKind::Float {
                suspicious = Some(format!("float literal {}", side.text));
                break;
            }
            if side.kind == TokenKind::Ident && names_cost_quantity(&side.text) && !chained {
                suspicious = Some(format!("cost-like identifier `{}`", side.text));
                break;
            }
        }
        if let Some(what) = suspicious {
            out.push(Violation {
                file: ctx.path.to_string(),
                line: t.line,
                rule: "float-eq",
                message: format!(
                    "raw `{}` near {what}; compare costs with `mdr_core::approx_eq` or `f64::total_cmp`",
                    t.text
                ),
            });
        }
    }
}

/// Whether the `WireMessage::Variant` occurrence ending at token index
/// `end` (exclusive) is a pattern (allowed) rather than an expression
/// (a construction, forbidden outside wire.rs).
fn is_pattern_position(tokens: &[Token], start: usize, end: usize) -> bool {
    // Forward: skip trailing delimiters of enclosing tuple/struct patterns;
    // a match arm (`=>`), an or-pattern (`|`), a `let` binding (`=`), or a
    // match guard (`if`) mean pattern position.
    let mut j = end;
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct(")") || t.is_punct(","))
    {
        j += 1;
    }
    if let Some(t) = tokens.get(j) {
        if t.is_punct("=>") || t.is_punct("|") || t.is_punct("=") || t.is_ident("if") {
            return true;
        }
    }
    // Backward: a `let`, a `matches!`, or an or-pattern bar before any
    // expression boundary means pattern; an `=`, `=>` or statement
    // boundary means expression.
    let mut k = start;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        if t.is_ident("let") || t.is_ident("matches") || t.is_punct("|") {
            return true;
        }
        if t.is_punct("=") || t.is_punct("=>") || t.is_punct(";") || t.is_punct("}") {
            return false;
        }
        if t.is_punct("{") {
            // A brace: pattern iff it opens a `match` block (first arm).
            let mut m = k;
            while m > 0 {
                m -= 1;
                let b = &tokens[m];
                if b.is_ident("match") {
                    return true;
                }
                if b.is_punct(";") || b.is_punct("{") || b.is_punct("}") {
                    return false;
                }
            }
            return false;
        }
    }
    false
}

fn check_wire_construction(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    exempt: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let mut i = 0;
    while i + 2 < tokens.len() {
        if !(tokens[i].is_ident("WireMessage")
            && tokens[i + 1].is_punct("::")
            && tokens[i + 2].kind == TokenKind::Ident)
            || in_ranges(exempt, i)
        {
            i += 1;
            continue;
        }
        let variant = tokens[i + 2].text.clone();
        // Find the end of the occurrence: the matching `}` of a struct
        // variant, or the path itself for unit/shorthand uses.
        let mut end = i + 3;
        if tokens.get(end).is_some_and(|t| t.is_punct("{")) {
            let mut depth = 0usize;
            while end < tokens.len() {
                if tokens[end].is_punct("{") {
                    depth += 1;
                } else if tokens[end].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                end += 1;
            }
        } else if tokens.get(end).is_some_and(|t| t.is_punct("(")) {
            // Function-call syntax is a constructor helper (allowed); the
            // paths we police are variant literals.
            i = end;
            continue;
        }
        if !is_pattern_position(tokens, i, end) {
            out.push(Violation {
                file: ctx.path.to_string(),
                line: tokens[i].line,
                rule: "wire-construction",
                message: format!(
                    "`WireMessage::{variant}` constructed outside crates/sim/src/wire.rs; use the constructor helpers"
                ),
            });
        }
        i = end;
    }
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

fn doc_has_paper_ref(doc: &str) -> bool {
    doc.contains('§') || doc.contains("Eq.") || doc.contains("Theorem")
}

fn check_paper_refs(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    exempt: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("pub") || in_ranges(exempt, i) {
            continue;
        }
        // `pub(crate)` and friends are not part of the public API.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            while j < tokens.len() && !tokens[j].is_punct(")") {
                j += 1;
            }
            continue;
        }
        // Skip `unsafe`/`async`/`extern "C"` qualifiers to the keyword.
        while tokens
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "unsafe" | "async" | "extern"))
            || tokens.get(j).is_some_and(|t| t.kind == TokenKind::Str)
        {
            j += 1;
        }
        let Some(kw) = tokens.get(j) else { continue };
        if !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            continue; // `pub use` re-exports document at the definition.
        }
        let name = tokens
            .get(j + 1)
            .map_or_else(|| "<unnamed>".to_string(), |t| t.text.clone());
        // Collect the attached doc block: contiguous docs and attributes
        // directly above the `pub`.
        let mut docs = String::new();
        let mut k = i;
        while k > 0 {
            k -= 1;
            let t = &tokens[k];
            if t.kind == TokenKind::Doc && !t.text.starts_with("//!") && !t.text.starts_with("/*!")
            {
                docs.push_str(&t.text);
                docs.push('\n');
                continue;
            }
            // Attributes between docs and the item: step over `#[...]`,
            // and pick up any `#[doc = "..."]` strings on the way.
            if t.is_punct("]") {
                let mut depth = 1;
                let mut saw_doc_attr = false;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if tokens[k].is_punct("]") {
                        depth += 1;
                    } else if tokens[k].is_punct("[") {
                        depth -= 1;
                    } else if tokens[k].kind == TokenKind::Str {
                        if saw_doc_attr {
                            docs.push_str(&tokens[k].text);
                            docs.push('\n');
                        }
                    } else if tokens[k].is_ident("doc") {
                        saw_doc_attr = true;
                    }
                }
                if k > 0 && tokens[k - 1].is_punct("#") {
                    k -= 1;
                }
                continue;
            }
            break;
        }
        if !doc_has_paper_ref(&docs) {
            out.push(Violation {
                file: ctx.path.to_string(),
                line: t.line,
                rule: "paper-ref",
                message: format!(
                    "public {} `{name}` lacks a paper reference (§, Eq., or Theorem) in its docs",
                    kw.text
                ),
            });
        }
    }
}

/// Rule 5: a timeout-named identifier pinned to a raw numeric literal,
/// either as a struct-literal field (`ack_timeout: 0.25`) or a binding /
/// assignment (`let timeout = 2.5`, `const RETRY_TIMEOUT: f64 = 0.35`).
/// Declarations (`retry_timeout: f64,` in a struct or parameter list) and
/// bindings to expressions (`let timeout = cfg.retry_timeout;`) pass:
/// they move a timeout around, they don't invent one.
fn check_timeout_constant(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    exempt: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !t.text.to_ascii_lowercase().contains("timeout")
            || in_ranges(exempt, i)
        {
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|n| n.is_punct(":")) {
            j += 1;
            // Step over a type annotation (`f64`, `Option<f64>`, …) to a
            // following `=`; a literal directly after the `:` is a
            // struct-literal field init and stays in scope.
            if tokens.get(j).is_some_and(|n| n.kind == TokenKind::Ident) {
                while tokens.get(j).is_some_and(|n| {
                    n.kind == TokenKind::Ident
                        || n.is_punct("::")
                        || n.is_punct("<")
                        || n.is_punct(">")
                }) {
                    j += 1;
                }
                if !tokens.get(j).is_some_and(|n| n.is_punct("=")) {
                    continue;
                }
                j += 1;
            }
        } else if tokens.get(j).is_some_and(|n| n.is_punct("=")) {
            j += 1;
        } else {
            continue;
        }
        if tokens.get(j).is_some_and(|n| n.is_punct("-")) {
            j += 1;
        }
        if tokens
            .get(j)
            .is_some_and(|n| matches!(n.kind, TokenKind::Int | TokenKind::Float))
        {
            out.push(Violation {
                file: ctx.path.to_string(),
                line: t.line,
                rule: "timeout-constant",
                message: format!(
                    "`{}` bound to a raw numeric literal; retransmission timing is owned by `ArqConfig` in crates/sim/src/faults.rs",
                    t.text
                ),
            });
        }
    }
}

fn check_unwrap(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    exempt: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for i in 0..tokens.len().saturating_sub(2) {
        if !tokens[i].is_punct(".") || in_ranges(exempt, i) {
            continue;
        }
        let name = &tokens[i + 1];
        if name.kind == TokenKind::Ident
            && (name.text == "unwrap" || name.text == "expect")
            && tokens[i + 2].is_punct("(")
        {
            out.push(Violation {
                file: ctx.path.to_string(),
                line: name.line,
                rule: "no-unwrap",
                message: format!(
                    "`.{}()` in library code; use `let … else` with a described panic, or propagate",
                    name.text
                ),
            });
        }
    }
}
