//! Module-level symbol extraction: functions, their impl owners, and the
//! attributes the audit passes care about, recovered from the flat token
//! stream of one file.
//!
//! This is deliberately a heuristic extractor, not a parser: it tracks
//! brace depth and an `impl`/`trait` owner stack, recognizes `fn` items,
//! and records for each one its visibility, `#[deprecated]` marker,
//! whether it takes an explicit RNG seed parameter (`seed` / `*_seed`),
//! and the token range of its body. Symbol ids look like
//! `sim::sweep::SweepGrid::run_serial` — `<crate dir>::<file stem>` plus
//! the owner type and function name — which is unambiguous enough for
//! name-based call-graph resolution over this workspace.

use crate::lexer::{in_ranges, lex, test_ranges, Token, TokenKind};

/// One extracted function symbol.
#[derive(Debug, Clone)]
pub(crate) struct Symbol {
    /// Stable id: `crate::module[::Owner]::name`.
    pub id: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub owner: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body including braces; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Declared plain `pub` (restricted `pub(crate)` and private count as
    /// internal).
    pub is_pub: bool,
    /// Carries `#[deprecated]`.
    pub deprecated: bool,
    /// Has a parameter named `seed` or ending in `_seed` — the workspace
    /// convention for "deterministic given this seed" entry points.
    pub takes_seed: bool,
}

/// Everything the audit needs from one file.
#[derive(Debug)]
pub(crate) struct FileSymbols {
    /// The full token stream (symbol body ranges index into this).
    pub tokens: Vec<Token>,
    /// Extracted function symbols, in source order.
    pub symbols: Vec<Symbol>,
    /// Names declared with a `HashMap`/`HashSet` type or initializer
    /// anywhere in the file (struct fields, locals, parameters): the
    /// receiver set for the map-iteration rule.
    pub hash_names: Vec<String>,
}

/// Rust keywords that can prefix `fn` in a signature.
const FN_QUALIFIERS: &[&str] = &["unsafe", "async", "const", "extern"];

/// Derives the `crate::module` prefix from a workspace-relative path like
/// `crates/sim/src/sweep.rs` (→ `sim::sweep`). `lib.rs`/`main.rs`/`mod.rs`
/// use the directory name alone.
fn module_prefix(path: &str) -> String {
    let mut parts: Vec<&str> = path.split('/').collect();
    let Some(file) = parts.pop() else {
        return path.to_string();
    };
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    // crates/<dir>/src/<...>/<stem>.rs
    let crate_name = parts.get(1).copied().unwrap_or("crate");
    let nested: Vec<&str> = parts.iter().skip(3).copied().collect();
    let mut id = String::from(crate_name);
    for n in &nested {
        id.push_str("::");
        id.push_str(n);
    }
    if !matches!(stem, "lib" | "main" | "mod") {
        id.push_str("::");
        id.push_str(stem);
    }
    id
}

/// Scans an `impl`/`trait` header starting after its keyword and returns
/// (type name, token index of the opening `{`), or `None` if the header
/// never opens a block.
///
/// For `impl`, the self type is the *last* top-level path segment before
/// the block or `where` clause (`impl fmt::Display for sweep::SweepGrid`
/// → `SweepGrid`); for `trait`, it is the *first* identifier (supertraits
/// follow the name, not precede it).
fn impl_header(tokens: &[Token], after_kw: usize, first_wins: bool) -> Option<(String, usize)> {
    let mut angle: i64 = 0;
    let mut candidate: Option<String> = None;
    let mut frozen = false;
    let mut j = after_kw;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") && angle <= 0 {
            return candidate.map(|c| (c, j));
        }
        if t.is_punct(";") || t.is_punct("}") {
            return None;
        }
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && angle <= 0 {
            if t.text == "where" {
                frozen = true;
            } else if !frozen && !matches!(t.text.as_str(), "for" | "dyn" | "mut" | "const") {
                if candidate.is_none() || !first_wins {
                    candidate = Some(t.text.clone());
                }
                frozen = first_wins;
            }
        }
        j += 1;
    }
    None
}

/// Extracts the symbols of one lexed file.
pub(crate) fn extract(path: &str, src: &str) -> FileSymbols {
    let tokens = lex(src);
    let tests = test_ranges(&tokens);
    let prefix = module_prefix(path);
    let mut symbols = Vec::new();
    // Owner stack: (type name, brace depth at which its block closes).
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            while owners.last().is_some_and(|(_, d)| *d > depth) {
                owners.pop();
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && (t.text == "impl" || t.text == "trait") {
            // `trait Name {` vs `impl [<G>] [Trait for] Type [where …] {`.
            if let Some((owner, open)) = impl_header(&tokens, i + 1, t.text == "trait") {
                owners.push((owner, depth + 1));
                depth += 1;
                i = open + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let line = t.line;
            let is_test = in_ranges(&tests, i);
            let (is_pub, deprecated) = lookback_qualifiers(&tokens, i);
            let (takes_seed, sig_end) = scan_signature(&tokens, i + 2);
            // Body: first `{` (matched) or `;` after the signature.
            let mut body = None;
            let mut j = sig_end;
            while j < tokens.len() {
                if tokens[j].is_punct(";") {
                    j += 1;
                    break;
                }
                if tokens[j].is_punct("{") {
                    let close = match_brace(&tokens, j);
                    body = Some((j, close));
                    j = close;
                    break;
                }
                j += 1;
            }
            let owner = owners.last().map(|(o, _)| o.clone());
            let id = match &owner {
                Some(o) => format!("{prefix}::{o}::{name}"),
                None => format!("{prefix}::{name}"),
            };
            symbols.push(Symbol {
                id,
                name,
                owner,
                file: path.to_string(),
                line,
                body,
                is_test,
                is_pub,
                deprecated,
                takes_seed,
            });
            i = j.max(i + 2);
            continue;
        }
        i += 1;
    }

    let hash_names = hash_typed_names(&tokens);
    FileSymbols {
        tokens,
        symbols,
        hash_names,
    }
}

/// Walks back from the `fn` keyword over qualifiers and attributes to
/// find `pub` visibility and a `#[deprecated]` marker.
fn lookback_qualifiers(tokens: &[Token], fn_idx: usize) -> (bool, bool) {
    let mut is_pub = false;
    let mut deprecated = false;
    let mut k = fn_idx;
    while k > 0 {
        let prev = &tokens[k - 1];
        if prev.kind == TokenKind::Ident && FN_QUALIFIERS.contains(&prev.text.as_str()) {
            k -= 1;
            continue;
        }
        if prev.kind == TokenKind::Str {
            // `extern "C"` ABI string.
            k -= 1;
            continue;
        }
        if prev.is_ident("pub") {
            is_pub = true;
            k -= 1;
            continue;
        }
        if prev.is_punct(")") {
            // Possibly `pub(crate)` / `pub(super)`: scan to the matching
            // `(` and check for a `pub` before it.
            let mut depth = 1;
            let mut m = k - 1;
            while m > 0 && depth > 0 {
                m -= 1;
                if tokens[m].is_punct(")") {
                    depth += 1;
                } else if tokens[m].is_punct("(") {
                    depth -= 1;
                }
            }
            if m > 0 && tokens[m - 1].is_ident("pub") {
                // Restricted visibility: internal, not `pub`.
                k = m - 1;
                continue;
            }
            break;
        }
        if prev.is_punct("]") {
            // An attribute: scan back to its `#`, noting `deprecated`.
            let mut depth = 1;
            let mut m = k - 1;
            while m > 0 && depth > 0 {
                m -= 1;
                if tokens[m].is_punct("]") {
                    depth += 1;
                } else if tokens[m].is_punct("[") {
                    depth -= 1;
                } else if tokens[m].is_ident("deprecated") {
                    deprecated = true;
                }
            }
            if m > 0 && tokens[m - 1].is_punct("#") {
                k = m - 1;
                continue;
            }
            break;
        }
        if prev.kind == TokenKind::Doc {
            k -= 1;
            continue;
        }
        break;
    }
    (is_pub, deprecated)
}

/// Scans a signature from just after the function name: steps over the
/// generic parameter list, then the parenthesized parameters, reporting
/// whether any parameter is named `seed`/`*_seed`. Returns (takes_seed,
/// token index just past the closing `)`).
fn scan_signature(tokens: &[Token], mut j: usize) -> (bool, usize) {
    // Generics.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut angle: i64 = 0;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    let mut takes_seed = false;
    if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct("(") {
                depth += 1;
            } else if tokens[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if depth == 1
                && tokens[j].kind == TokenKind::Ident
                && (tokens[j].text == "seed" || tokens[j].text.ends_with("_seed"))
                && tokens.get(j + 1).is_some_and(|n| n.is_punct(":"))
            {
                takes_seed = true;
            }
            j += 1;
        }
    }
    (takes_seed, j)
}

/// Token index one past the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct("{") {
            depth += 1;
        } else if tokens[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Iteration-order-sensitive methods on hash containers.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Names declared with a `HashMap`/`HashSet` type annotation or
/// initializer anywhere in the token stream: `field: HashMap<..>`,
/// `let m = HashSet::new()`, `counts: &mut HashMap<..>`, and the
/// `std::collections::` spellings of each.
fn hash_typed_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut k = i;
        while k >= 2 && tokens[k - 1].is_punct("::") && tokens[k - 2].kind == TokenKind::Ident {
            k -= 2;
        }
        // `name : [& [mut]] HashMap`.
        let mut b = k;
        while b > 0 && (tokens[b - 1].is_punct("&") || tokens[b - 1].is_ident("mut")) {
            b -= 1;
        }
        if b >= 2 && tokens[b - 1].is_punct(":") && tokens[b - 2].kind == TokenKind::Ident {
            names.push(tokens[b - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::…` / `name = HashMap::…`.
        if b >= 2 && tokens[b - 1].is_punct("=") && tokens[b - 2].kind == TokenKind::Ident {
            names.push(tokens[b - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}
