//! `cargo xtask mutate` — automated single-token mutation testing.
//!
//! The generator derives mutants from the lexed token stream of the
//! protocol-critical sources (`crates/core`, `crates/sim/src/{engine,
//! journal,protocol,faults,sim,topology}.rs`,
//! `crates/verify/src/invariants.rs`):
//!
//! * operator swaps: `+`↔`-`, `<`→`<=`, `>`→`>=`, `<=`→`<`, `>=`→`>`,
//!   `==`↔`!=`, `&&`↔`||` (guarded to binary positions so generics and
//!   double-references are not mangled);
//! * boolean negation: deletion of a unary `!`;
//! * off-by-one constant tweaks: decimal integer literals ±1, type
//!   suffix preserved;
//! * match-arm deletion: removal of a final `_ => …` arm;
//! * early-return deletion: removal of a `return …;` statement that is
//!   not the last statement of its block.
//!
//! Substitution mutants differ from the original in exactly one token;
//! deletion mutants remove one contiguous token span — both properties
//! are pinned by self-tests. Test code and attributes are never
//! mutated. Each mutant id is an FNV-1a hash of `file|span|replacement`
//! so ids are stable across runs and machines; `--sample N --seed S`
//! picks a deterministic SplitMix64-ranked subset.
//!
//! The runner splices each sampled mutant into its file (restoring the
//! original on every exit path), compiles it in the scratch target dir
//! `target/mutants`, and — if it builds — runs the per-crate kill suite
//! (targeted lib tests plus the `mdr-verify --kill-suite` model-checker
//! battery). Survivors must be triaged in `crates/xtask/mutants.allow`;
//! `--check` fails on an unmanifested survivor or a kill rate below the
//! threshold.

use crate::lexer::{in_ranges, lex, test_ranges, Token, TokenKind};
use std::path::Path;
use std::process::ExitCode;

/// One generated mutant.
#[derive(Debug, Clone)]
pub(crate) struct Mutant {
    /// Stable 16-hex-digit id.
    pub id: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the mutated span.
    pub line: usize,
    /// Char-index span in the original source that is replaced.
    pub start: usize,
    /// End of the replaced span (half-open).
    pub end: usize,
    /// Original text of the span.
    pub original: String,
    /// Replacement text (empty for deletions).
    pub replacement: String,
    /// Operator name.
    pub op: &'static str,
}

/// 64-bit FNV-1a.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 — same mixer the sweep engine uses for seed derivation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Keywords that disqualify an identifier from being a binary operand.
const OPERAND_KEYWORDS: &[&str] = &[
    "return", "if", "else", "match", "while", "for", "in", "loop", "let", "move", "as", "break",
    "continue", "where", "impl", "dyn", "ref", "mut", "fn", "use", "pub", "const", "static",
];

/// Whether `t` can be the left operand of a binary operator.
fn is_operand_left(t: &Token) -> bool {
    match t.kind {
        TokenKind::Ident => !OPERAND_KEYWORDS.contains(&t.text.as_str()),
        TokenKind::Int | TokenKind::Float => true,
        TokenKind::Punct => t.text == ")" || t.text == "]",
        _ => false,
    }
}

/// Whether `t` looks like the start of a comparison operand (used to
/// keep `<`/`>` swaps away from generics: type names are uppercase).
fn is_cmp_operand(t: &Token) -> bool {
    match t.kind {
        TokenKind::Ident => {
            !OPERAND_KEYWORDS.contains(&t.text.as_str()) && !t.text.starts_with(char::is_uppercase)
        }
        TokenKind::Int | TokenKind::Float => true,
        TokenKind::Punct => t.text == "(",
        _ => false,
    }
}

/// Starts-with-uppercase identifiers are type-position in practice;
/// swapping `+` in `Clone + Send` bounds only makes stillborns.
fn is_typeish(t: &Token) -> bool {
    t.kind == TokenKind::Ident && t.text.starts_with(char::is_uppercase)
}

/// Token index ranges covered by `#[…]` attributes.
fn attr_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.is_punct("[") || t.is_punct("!"))
        {
            let open = if tokens[i + 1].is_punct("!") {
                i + 2
            } else {
                i + 1
            };
            if tokens.get(open).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 1;
                let mut j = open + 1;
                while j < tokens.len() && depth > 0 {
                    if tokens[j].is_punct("[") {
                        depth += 1;
                    } else if tokens[j].is_punct("]") {
                        depth -= 1;
                    }
                    j += 1;
                }
                out.push((i, j));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Generates every mutant for one file.
pub(crate) fn mutants_for(path: &str, src: &str) -> Vec<Mutant> {
    let tokens = lex(src);
    let tests = test_ranges(&tokens);
    let attrs = attr_ranges(&tokens);
    let skip = |idx: usize| in_ranges(&tests, idx) || in_ranges(&attrs, idx);
    let mut out = Vec::new();

    let mut push = |op: &'static str, t: &Token, end: usize, original: String, repl: String| {
        let id = format!(
            "{:016x}",
            fnv1a64(format!("{path}|{}|{end}|{repl}", t.start).as_bytes())
        );
        out.push(Mutant {
            id,
            file: path.to_string(),
            line: t.line,
            start: t.start,
            end,
            original,
            replacement: repl,
            op,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if skip(i) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let next = tokens.get(i + 1);

        if t.kind == TokenKind::Punct {
            let binary = prev.is_some_and(is_operand_left);
            match t.text.as_str() {
                "+" | "-" => {
                    let bound = prev.is_some_and(is_typeish) || next.is_some_and(is_typeish);
                    if binary && !bound {
                        let repl = if t.text == "+" { "-" } else { "+" };
                        push("op-swap", t, t.end, t.text.clone(), repl.to_string());
                    }
                }
                "<" | ">"
                    if prev.is_some_and(is_cmp_operand) && next.is_some_and(is_cmp_operand) =>
                {
                    push("cmp-swap", t, t.end, t.text.clone(), format!("{}=", t.text));
                }
                "<=" | ">=" => {
                    let repl = t.text.trim_end_matches('=').to_string();
                    push("cmp-swap", t, t.end, t.text.clone(), repl);
                }
                "==" | "!=" => {
                    let repl = if t.text == "==" { "!=" } else { "==" };
                    push("cmp-swap", t, t.end, t.text.clone(), repl.to_string());
                }
                "&&" | "||" if binary => {
                    let repl = if t.text == "&&" { "||" } else { "&&" };
                    push("logic-swap", t, t.end, t.text.clone(), repl.to_string());
                }
                "!" => {
                    let unary = match prev {
                        None => true,
                        Some(p) => {
                            (p.kind != TokenKind::Ident
                                || OPERAND_KEYWORDS.contains(&p.text.as_str()))
                                && !p.is_punct("#")
                        }
                    };
                    let negatable = next.is_some_and(|n| {
                        (n.kind == TokenKind::Ident && !OPERAND_KEYWORDS.contains(&n.text.as_str()))
                            || n.is_punct("(")
                    });
                    if unary && negatable {
                        push("negation-del", t, t.end, t.text.clone(), String::new());
                    }
                }
                _ => {}
            }
            continue;
        }

        if t.kind == TokenKind::Int && !t.text.starts_with('0') {
            let digits: String = t.text.chars().take_while(char::is_ascii_digit).collect();
            let suffix: String = t.text.chars().skip(digits.len()).collect();
            if !digits.is_empty() && digits.len() <= 18 && !suffix.starts_with('_') {
                if let Ok(v) = digits.parse::<u64>() {
                    push(
                        "int-tweak",
                        t,
                        t.end,
                        t.text.clone(),
                        format!("{}{suffix}", v + 1),
                    );
                    if v > 0 {
                        push(
                            "int-tweak",
                            t,
                            t.end,
                            t.text.clone(),
                            format!("{}{suffix}", v - 1),
                        );
                    }
                }
            }
            continue;
        }

        if t.kind == TokenKind::Ident {
            if t.text == "_"
                && next.is_some_and(|n| n.is_punct("=>"))
                && prev.is_some_and(|p| p.is_punct(",") || p.is_punct("{"))
            {
                if let Some(last) = arm_end(&tokens, i) {
                    let original: String = slice_text(src, t.start, tokens[last].end);
                    push("arm-del", t, tokens[last].end, original, String::new());
                }
            }
            if t.text == "return" {
                // Statement position only: the previous token must close a
                // statement or open a block, so `match x { _ => return y }`
                // arms and similar expression uses are left alone.
                let stmt_pos =
                    prev.is_none_or(|p| p.is_punct("{") || p.is_punct(";") || p.is_punct("}"));
                if stmt_pos {
                    if let Some(semi) = statement_end(&tokens, i) {
                        // Deleting an early `return x;` from a statement-
                        // position `if` block compiles (the block becomes
                        // `()`); deletions that change a tail expression's
                        // type are caught by the stillborn check and
                        // excluded from the score.
                        let original = slice_text(src, t.start, tokens[semi].end);
                        push("return-del", t, tokens[semi].end, original, String::new());
                    }
                }
            }
        }
    }
    out
}

/// Token index of the last token of the match arm starting at the `_`
/// token `us` (`_ => expr,` or `_ => { … }[,]`).
fn arm_end(tokens: &[Token], us: usize) -> Option<usize> {
    let body = us + 2;
    if tokens.get(body)?.is_punct("{") {
        let mut depth = 0usize;
        let mut j = body;
        while j < tokens.len() {
            if tokens[j].is_punct("{") {
                depth += 1;
            } else if tokens[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    let last = if tokens.get(j + 1).is_some_and(|n| n.is_punct(",")) {
                        j + 1
                    } else {
                        j
                    };
                    return Some(last);
                }
            }
            j += 1;
        }
        return None;
    }
    let mut depth = 0i64;
    let mut j = body;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
            "}" if t.kind == TokenKind::Punct => {
                if depth == 0 {
                    // Arm without trailing comma, closed by the match's
                    // own `}` — the arm ends at the previous token.
                    return Some(j - 1);
                }
                depth -= 1;
            }
            "," if t.kind == TokenKind::Punct && depth == 0 => {
                return Some(j);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Token index of the `;` closing the `return` statement at `ret`, at
/// bracket depth 0.
fn statement_end(tokens: &[Token], ret: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = ret + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return Some(j),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// The chars of `src` in `[start, end)` (char indices).
fn slice_text(src: &str, start: usize, end: usize) -> String {
    src.chars()
        .skip(start)
        .take(end.saturating_sub(start))
        .collect()
}

/// Splices a mutant into its source.
pub(crate) fn apply_mutant(src: &str, m: &Mutant) -> String {
    let mut out = String::with_capacity(src.len());
    for (idx, c) in src.chars().enumerate() {
        if idx == m.start {
            out.push_str(&m.replacement);
        }
        if idx < m.start || idx >= m.end {
            out.push(c);
        }
    }
    if m.start >= src.chars().count() {
        out.push_str(&m.replacement);
    }
    out
}

/// Deterministically samples `n` mutants: rank by
/// `splitmix64(seed ^ fnv(id))`, take the lowest, then restore source
/// order for the run.
pub(crate) fn sample_mutants(all: &[Mutant], seed: u64, n: usize) -> Vec<Mutant> {
    let mut ranked: Vec<(u64, &Mutant)> = all
        .iter()
        .map(|m| (splitmix64(seed ^ fnv1a64(m.id.as_bytes())), m))
        .collect();
    ranked.sort_by(|a, b| (a.0, &a.1.id).cmp(&(b.0, &b.1.id)));
    let mut picked: Vec<Mutant> = ranked.into_iter().take(n).map(|(_, m)| m.clone()).collect();
    picked.sort_by(|a, b| {
        (&a.file, a.start, &a.replacement).cmp(&(&b.file, b.start, &b.replacement))
    });
    picked
}

/// The mutation target set, workspace-relative.
pub(crate) fn target_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    let core_src = root.join("crates/core/src");
    let mut core_files = Vec::new();
    crate::collect_rs(&core_src, &mut core_files);
    for f in core_files {
        if let Ok(rel) = f.strip_prefix(root) {
            files.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    for fixed in [
        "crates/sim/src/engine.rs",
        "crates/sim/src/journal.rs",
        "crates/sim/src/protocol.rs",
        "crates/sim/src/faults.rs",
        "crates/sim/src/sim.rs",
        "crates/sim/src/topology.rs",
        "crates/verify/src/invariants.rs",
    ] {
        if root.join(fixed).is_file() {
            files.push(fixed.to_string());
        }
    }
    files.sort();
    files
}

/// Cargo package owning a workspace-relative path.
fn package_of(file: &str) -> &'static str {
    if file.starts_with("crates/core/") {
        "mdr-core"
    } else if file.starts_with("crates/sim/") {
        "mdr-sim"
    } else {
        "mdr-verify"
    }
}

/// Kill-suite commands for a package, cheapest first. Every command is
/// a cargo invocation run with the scratch `target/mutants` dir.
fn kill_suite(pkg: &str) -> Vec<Vec<&'static str>> {
    let core_tests = vec!["test", "-q", "-p", "mdr-core", "--lib"];
    let sim_tests = vec!["test", "-q", "-p", "mdr-sim", "--lib"];
    let checker = vec!["run", "-q", "-p", "mdr-verify", "--", "--kill-suite"];
    match pkg {
        "mdr-core" => vec![core_tests, sim_tests, checker],
        "mdr-sim" => vec![sim_tests, checker],
        _ => vec![checker],
    }
}

/// Per-command wall limit. Mutants that loop forever count as killed.
const COMMAND_TIME_LIMIT_MS: u64 = 240_000;

/// Outcome of running one mutant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Did not compile — excluded from the score.
    Stillborn,
    /// Detected by the named suite command.
    Killed(String),
    /// Compiled and passed the whole kill suite.
    Survived,
}

/// Restores a mutated file on drop, whatever happens to the run.
struct Restore<'a> {
    path: &'a Path,
    original: &'a str,
}

impl Drop for Restore<'_> {
    fn drop(&mut self) {
        if std::fs::write(self.path, self.original).is_err() {
            eprintln!(
                "xtask mutate: FAILED to restore {} — check `git status`",
                self.path.display()
            );
        }
    }
}

/// Runs one cargo command under the scratch target dir; `Ok(true)` means
/// it passed within the limit.
fn run_cargo(root: &Path, args: &[&str]) -> Result<bool, String> {
    use std::process::{Command, Stdio};
    let mut child = Command::new("cargo")
        .args(args)
        .current_dir(root)
        .env("CARGO_TARGET_DIR", root.join("target/mutants"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn cargo {args:?}: {e}"))?;
    let started = std::time::Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(status.success()),
            Ok(None) => {
                if started.elapsed().as_millis() as u64 > COMMAND_TIME_LIMIT_MS {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Ok(false);
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            Err(e) => return Err(format!("wait cargo {args:?}: {e}")),
        }
    }
}

/// Compiles and tests one mutant; the file is restored before returning.
fn run_mutant(root: &Path, m: &Mutant, src: &str) -> Result<Outcome, String> {
    let path = root.join(&m.file);
    let mutated = apply_mutant(src, m);
    let _restore = Restore {
        path: &path,
        original: src,
    };
    std::fs::write(&path, &mutated).map_err(|e| format!("write {}: {e}", m.file))?;
    let pkg = package_of(&m.file);
    if !run_cargo(root, &["check", "-q", "-p", pkg])? {
        return Ok(Outcome::Stillborn);
    }
    for cmd in kill_suite(pkg) {
        if !run_cargo(root, &cmd)? {
            return Ok(Outcome::Killed(cmd.join(" ")));
        }
    }
    Ok(Outcome::Survived)
}

/// Parsed `mutants.allow` manifest: (id, triage note).
pub(crate) fn parse_manifest(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((id, note)) = line.split_once('#') else {
            return Err(format!(
                "mutants.allow:{}: expected `id # triage note`",
                n + 1
            ));
        };
        let id = id.trim();
        let note = note.trim();
        let well_formed = id.len() == 16
            && id
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase());
        if !well_formed || note.is_empty() {
            return Err(format!(
                "mutants.allow:{}: need a 16-hex id and a non-empty triage note",
                n + 1
            ));
        }
        out.push((id.to_string(), note.to_string()));
    }
    Ok(out)
}

/// CLI options for `xtask mutate`.
struct Options {
    sample: usize,
    seed: u64,
    threshold: u64,
    list: bool,
    check: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        sample: 40,
        seed: 6,
        threshold: 85,
        list: false,
        check: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .and_then(|v| v.parse().map_err(|e| format!("{name}: {e}")))
        };
        match a.as_str() {
            "--sample" => o.sample = usize::try_from(num("--sample")?).unwrap_or(usize::MAX),
            "--seed" => o.seed = num("--seed")?,
            "--threshold" => o.threshold = num("--threshold")?,
            "--list" => o.list = true,
            "--check" => o.check = true,
            other => return Err(format!("unknown mutate flag `{other}`")),
        }
    }
    Ok(o)
}

/// Entry point for `cargo xtask mutate`.
pub(crate) fn run(root: &Path, args: &[String]) -> ExitCode {
    match run_inner(root, args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("xtask mutate: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_inner(root: &Path, args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_options(args)?;
    let mut all = Vec::new();
    let mut sources: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    for file in target_files(root) {
        let src =
            std::fs::read_to_string(root.join(&file)).map_err(|e| format!("read {file}: {e}"))?;
        all.extend(mutants_for(&file, &src));
        sources.insert(file, src);
    }
    all.sort_by(|a, b| (&a.file, a.start, &a.replacement).cmp(&(&b.file, b.start, &b.replacement)));

    if opts.list {
        for m in &all {
            println!(
                "{} {}:{} [{}] `{}` -> `{}`",
                m.id,
                m.file,
                m.line,
                m.op,
                m.original.replace('\n', "\\n"),
                m.replacement
            );
        }
        println!("xtask mutate: {} mutant(s) generated", all.len());
        return Ok(ExitCode::SUCCESS);
    }

    let manifest_path = root.join("crates/xtask/mutants.allow");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => parse_manifest(&text)?,
        Err(_) => Vec::new(),
    };

    let picked = sample_mutants(&all, opts.seed, opts.sample);
    println!(
        "xtask mutate: {} mutant(s) generated, running {} (seed {})",
        all.len(),
        picked.len(),
        opts.seed
    );

    let mut stillborn = 0usize;
    let mut killed = 0usize;
    let mut survivors: Vec<&Mutant> = Vec::new();
    for (n, m) in picked.iter().enumerate() {
        let Some(src) = sources.get(&m.file) else {
            return Err(format!("no source cached for {}", m.file));
        };
        let outcome = run_mutant(root, m, src)?;
        let (tag, extra) = match &outcome {
            Outcome::Stillborn => {
                stillborn += 1;
                ("stillborn", String::new())
            }
            Outcome::Killed(by) => {
                killed += 1;
                ("killed", format!(" by `cargo {by}`"))
            }
            Outcome::Survived => {
                survivors.push(m);
                ("SURVIVED", String::new())
            }
        };
        println!(
            "[{}/{}] {tag} {} {}:{} [{}] `{}` -> `{}`{extra}",
            n + 1,
            picked.len(),
            m.id,
            m.file,
            m.line,
            m.op,
            m.original.replace('\n', "\\n"),
            m.replacement
        );
    }

    let viable = killed + survivors.len();
    let score = if viable == 0 {
        100
    } else {
        (killed as u64) * 100 / (viable as u64)
    };
    println!(
        "xtask mutate: {viable} viable ({stillborn} stillborn), {killed} killed, {} survived — score {score}% (threshold {}%)",
        survivors.len(),
        opts.threshold
    );

    let mut failed = false;
    for s in &survivors {
        match manifest.iter().find(|(id, _)| *id == s.id) {
            Some((_, note)) => {
                println!("survivor {} is manifested: {note}", s.id);
            }
            None => {
                println!(
                    "survivor {} {}:{} [{}] `{}` -> `{}` is NOT in crates/xtask/mutants.allow",
                    s.id,
                    s.file,
                    s.line,
                    s.op,
                    s.original.replace('\n', "\\n"),
                    s.replacement
                );
                failed = true;
            }
        }
    }
    if score < opts.threshold {
        println!(
            "xtask mutate: score {score}% below threshold {}%",
            opts.threshold
        );
        failed = true;
    }
    if opts.check && failed {
        return Ok(ExitCode::FAILURE);
    }
    if !opts.check && failed {
        println!("xtask mutate: (informational run — pass --check to enforce)");
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (String, String) {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let path = "crates/demo/src/mutation_targets.rs".to_string();
        match std::fs::read_to_string(dir.join("mutation_targets.rs")) {
            Ok(src) => (path, src),
            Err(e) => panic!("fixture: {e}"),
        }
    }

    fn all_mutants() -> (String, Vec<Mutant>) {
        let (path, src) = fixture();
        let mutants = mutants_for(&path, &src);
        (src, mutants)
    }

    /// Lexes to comparable (kind, text) pairs.
    fn shape(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn substitution_mutants_change_exactly_one_token() {
        let (src, mutants) = all_mutants();
        let before = shape(&src);
        for m in mutants.iter().filter(|m| !m.replacement.is_empty()) {
            let after = shape(&apply_mutant(&src, m));
            assert_eq!(before.len(), after.len(), "{m:?}");
            let diffs: Vec<usize> = (0..before.len())
                .filter(|&i| before[i] != after[i])
                .collect();
            assert_eq!(diffs.len(), 1, "{m:?}");
            assert_eq!(after[diffs[0]].1, m.replacement, "{m:?}");
        }
    }

    #[test]
    fn deletion_mutants_remove_a_contiguous_token_run() {
        let (src, mutants) = all_mutants();
        let before = shape(&src);
        let deletions: Vec<&Mutant> = mutants
            .iter()
            .filter(|m| m.replacement.is_empty())
            .collect();
        assert!(!deletions.is_empty(), "fixture must produce deletions");
        for m in &deletions {
            let after = shape(&apply_mutant(&src, m));
            assert!(after.len() < before.len(), "{m:?}");
            // The surviving stream must be original-prefix + original-suffix.
            let removed = before.len() - after.len();
            let mut split = after.len();
            for i in 0..after.len() {
                if before[i] != after[i] {
                    split = i;
                    break;
                }
            }
            assert_eq!(&after[split..], &before[split + removed..], "{m:?}");
        }
    }

    #[test]
    fn applied_mutants_still_lex_and_ids_are_stable() {
        let (src, mutants) = all_mutants();
        assert!(!mutants.is_empty());
        let mut ids = std::collections::BTreeSet::new();
        for m in &mutants {
            assert_eq!(m.id.len(), 16, "{m:?}");
            assert!(ids.insert(m.id.clone()), "duplicate id {m:?}");
            assert_eq!(&src[..0], "", "spans are char indices");
            let mutated = apply_mutant(&src, m);
            assert_ne!(mutated, src, "{m:?}");
            // Round trip: splicing the original text back restores the file.
            let restored = {
                let head: String = mutated.chars().take(m.start).collect();
                let tail: String = mutated
                    .chars()
                    .skip(m.start + m.replacement.chars().count())
                    .collect();
                format!("{head}{}{tail}", m.original)
            };
            assert_eq!(restored, src, "{m:?}");
        }
    }

    #[test]
    fn every_operator_class_appears() {
        let (_, mutants) = all_mutants();
        let ops: std::collections::BTreeSet<&str> = mutants.iter().map(|m| m.op).collect();
        for op in [
            "op-swap",
            "cmp-swap",
            "logic-swap",
            "negation-del",
            "int-tweak",
            "arm-del",
            "return-del",
        ] {
            assert!(ops.contains(op), "missing {op}: have {ops:?}");
        }
    }

    #[test]
    fn guards_leave_types_tests_and_attributes_alone() {
        let (src, mutants) = all_mutants();
        // No mutant may touch the generics-heavy function: its only
        // angle brackets and `+`-free body offer nothing mutable
        // except guarded positions.
        let generics_at = src.find("fn generics_must_survive").unwrap_or(0);
        let tests_at = src.find("#[cfg(test)]").unwrap_or(src.len());
        for m in &mutants {
            let byte = src
                .char_indices()
                .nth(m.start)
                .map_or(src.len(), |(b, _)| b);
            assert!(
                !(generics_at..tests_at).contains(&byte),
                "mutant inside guarded generics fn: {m:?}"
            );
            assert!(byte < tests_at, "mutant inside #[cfg(test)]: {m:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_order_preserving() {
        let (_, mutants) = all_mutants();
        let a = sample_mutants(&mutants, 6, 5);
        let b = sample_mutants(&mutants, 6, 5);
        let ids = |v: &[Mutant]| v.iter().map(|m| m.id.clone()).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(a.len(), 5);
        // Samples come back in source order.
        for w in a.windows(2) {
            assert!(w[0].start < w[1].start || w[0].file != w[1].file);
        }
        // A different seed picks a different subset (overwhelmingly).
        let c = sample_mutants(&mutants, 7, 5);
        assert_ne!(ids(&a), ids(&c));
        // Oversampling returns everything.
        assert_eq!(sample_mutants(&mutants, 6, 10_000).len(), mutants.len());
    }

    #[test]
    fn manifest_lines_require_ids_and_notes() {
        let good = "0123456789abcdef # equivalent mutant: rounding identity\n";
        assert_eq!(parse_manifest(good).map(|v| v.len()), Ok(1));
        assert!(
            parse_manifest("0123456789abcdef\n").is_err(),
            "note required"
        );
        assert!(parse_manifest("xyz # short id\n").is_err());
        assert!(parse_manifest("0123456789ABCDEF # uppercase\n").is_err());
        let commented = "# heading\n\n0123456789abcdef # fine\n";
        assert_eq!(parse_manifest(commented).map(|v| v.len()), Ok(1));
    }
}

#[cfg(test)]
mod sample_pins {
    use super::*;

    /// Seed-6 sample over the fixture corpus, pinned by id. Ids hash
    /// `file|span|replacement`, so a drift here means either the fixture
    /// changed or the generator/sampler changed behaviour — both are
    /// worth a deliberate re-pin, never an accident.
    #[test]
    fn seed_six_sample_is_pinned() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let src = match std::fs::read_to_string(dir.join("mutation_targets.rs")) {
            Ok(s) => s,
            Err(e) => panic!("fixture: {e}"),
        };
        let mutants = mutants_for("crates/demo/src/mutation_targets.rs", &src);
        let picked: Vec<(String, &'static str)> = sample_mutants(&mutants, 6, 4)
            .into_iter()
            .map(|m| (m.id, m.op))
            .collect();
        let expected = [
            ("652af31e32191410", "op-swap"),
            ("06212ec3f86ba81e", "logic-swap"),
            ("41c6d47d11610aa0", "int-tweak"),
            ("7d0b651510c0fc07", "cmp-swap"),
        ];
        let got: Vec<(&str, &str)> = picked.iter().map(|(id, op)| (id.as_str(), *op)).collect();
        assert_eq!(got, expected);
    }
}
