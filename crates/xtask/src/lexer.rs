//! A minimal hand-rolled Rust lexer: just enough to drive the lint rules,
//! the determinism auditor, and the mutation engine.
//!
//! Produces a flat token stream with comments stripped, string/char
//! literals reduced to opaque tokens, and doc comments kept as dedicated
//! tokens (the paper-reference rule reads them; every other rule skips
//! them, so `.unwrap()` mentioned in prose is never flagged). Every token
//! carries its half-open `[start, end)` span in *char* indices of the
//! source, so the mutation engine can splice single-token edits back into
//! the original text. This is not a full parser — the rules layer applies
//! local, token-window heuristics tuned to this workspace's idioms.
//!
//! Hardened corner cases (each pinned by a fixture test):
//!
//! * raw strings and raw byte strings with any hash depth (`r"…"`,
//!   `r#"…"#`, `br##"…"##`), including bodies containing quotes, hashes,
//!   `//`, `/*`, and `#[cfg(test)]` text — the body is a single opaque
//!   `Str` token, never re-lexed;
//! * C string literals (`c"…"`, `cr#"…"#`), lexed as one `Str` token
//!   rather than a spurious `c` identifier followed by a string;
//! * nested block comments (`/* a /* b */ c */`) at any depth, doc or
//!   plain, terminated or not;
//! * line-continuation escapes inside string literals (`"…\` at end of
//!   line): the swallowed newline still advances the line counter, so
//!   diagnostics after a continued string point at the right line.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Floating-point literal.
    Float,
    /// String literal (normal, raw, byte, or C); text holds the contents.
    Str,
    /// Character or byte literal.
    Char,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`); text holds the raw
    /// comment including its leading markers.
    Doc,
    /// Operator or delimiter.
    Punct,
}

/// One lexeme with its 1-based source line and char-index span.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The lexeme text (contents only, for string literals).
    pub text: String,
    /// 1-based line where the lexeme starts.
    pub line: usize,
    /// Char index of the lexeme's first character in the source.
    pub start: usize,
    /// Char index one past the lexeme's last character.
    pub end: usize,
}

impl Token {
    /// Whether this token is exactly the punctuation `p`.
    pub(crate) fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// Whether this token is exactly the identifier/keyword `name`.
    pub(crate) fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Multi-character operators, longest first so greedy matching works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "=>", "->", "::", "..", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into a token stream. Unrecognized bytes are skipped — the
/// analysis passes are best-effort heuristics, not a compiler front end.
pub(crate) fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let len = chars.len();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;

    let at = |i: usize| chars.get(i).copied();

    while i < len {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && at(i + 1) == Some('/') {
            let mut j = i;
            while j < len && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            let is_doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            if is_doc {
                out.push(Token {
                    kind: TokenKind::Doc,
                    text,
                    line,
                    start: i,
                    end: j,
                });
            }
            i = j;
            continue;
        }
        if c == '/' && at(i + 1) == Some('*') {
            let start_line = line;
            let is_doc = matches!(at(i + 2), Some('!'))
                || (at(i + 2) == Some('*') && at(i + 3) != Some('/'));
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < len && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && at(j + 1) == Some('*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && at(j + 1) == Some('/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            if is_doc {
                out.push(Token {
                    kind: TokenKind::Doc,
                    text: chars[i..j.min(len)].iter().collect(),
                    line: start_line,
                    start: i,
                    end: j.min(len),
                });
            }
            i = j;
            continue;
        }

        // Raw strings, raw byte strings, raw C strings, and raw
        // identifiers: r".."/r#".."#/br".."/cr#".."#/r#ident.
        if c == 'r' || ((c == 'b' || c == 'c') && at(i + 1) == Some('r')) {
            let hash_start = if c == 'r' { i + 1 } else { i + 2 };
            let mut hashes = 0;
            while at(hash_start + hashes) == Some('#') {
                hashes += 1;
            }
            if at(hash_start + hashes) == Some('"') {
                let start_line = line;
                let mut j = hash_start + hashes + 1;
                let closes =
                    |j: usize| chars[j] == '"' && (0..hashes).all(|h| at(j + 1 + h) == Some('#'));
                while j < len && !closes(j) {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                let body: String = chars[hash_start + hashes + 1..j.min(len)].iter().collect();
                out.push(Token {
                    kind: TokenKind::Str,
                    text: body,
                    line: start_line,
                    start: i,
                    end: (j + 1 + hashes).min(len),
                });
                i = (j + 1 + hashes).min(len);
                continue;
            }
            if c == 'r' && hashes == 1 && at(hash_start + 1).is_some_and(is_ident_start) {
                // Raw identifier r#type: lex the ident part.
                let mut j = hash_start + 1;
                while j < len && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[hash_start + 1..j].iter().collect(),
                    line,
                    start: i,
                    end: j,
                });
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b/c.
        }

        // String literals (including byte strings and C strings).
        if c == '"' || ((c == 'b' || c == 'c') && at(i + 1) == Some('"')) {
            let start_line = line;
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            let mut body = String::new();
            while j < len && chars[j] != '"' {
                if chars[j] == '\\' {
                    // An escape consumes the next char wholesale; a
                    // line-continuation escape (`\` at end of line) swallows
                    // the newline, which must still count toward the line
                    // number or every diagnostic below drifts.
                    if at(j + 1) == Some('\n') {
                        line += 1;
                    }
                    j += 2;
                    continue;
                }
                if chars[j] == '\n' {
                    line += 1;
                }
                body.push(chars[j]);
                j += 1;
            }
            out.push(Token {
                kind: TokenKind::Str,
                text: body,
                line: start_line,
                start: i,
                end: (j + 1).min(len),
            });
            i = j + 1;
            continue;
        }

        // Char literals vs lifetimes.
        if c == '\'' {
            if at(i + 1).is_some_and(is_ident_start) {
                let mut j = i + 2;
                while j < len && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if at(j) != Some('\'') {
                    // Lifetime: skip it entirely.
                    i = j;
                    continue;
                }
            }
            let mut j = i + 1;
            if at(j) == Some('\\') {
                j += 2;
            }
            while j < len && chars[j] != '\'' {
                j += 1;
            }
            out.push(Token {
                kind: TokenKind::Char,
                text: String::new(),
                line,
                start: i,
                end: (j + 1).min(len),
            });
            i = j + 1;
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < len && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
                start: i,
                end: j,
            });
            i = j;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut float = false;
            if c == '0' && matches!(at(j), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
                j += 1;
                while j < len && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            } else {
                while j < len && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
                if at(j) == Some('.') && at(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                    float = true;
                    j += 1;
                    while j < len && (chars[j].is_ascii_digit() || chars[j] == '_') {
                        j += 1;
                    }
                }
                if matches!(at(j), Some('e' | 'E'))
                    && (at(j + 1).is_some_and(|d| d.is_ascii_digit())
                        || (matches!(at(j + 1), Some('+' | '-'))
                            && at(j + 2).is_some_and(|d| d.is_ascii_digit())))
                {
                    float = true;
                    j += 1;
                    if matches!(at(j), Some('+' | '-')) {
                        j += 1;
                    }
                    while j < len && (chars[j].is_ascii_digit() || chars[j] == '_') {
                        j += 1;
                    }
                }
                // Type suffix: f32/f64 makes it a float either way.
                let suffix_start = j;
                while j < len && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let suffix: String = chars[suffix_start..j].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    float = true;
                }
            }
            out.push(Token {
                kind: if float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                text: chars[i..j].iter().collect(),
                line,
                start: i,
                end: j,
            });
            i = j;
            continue;
        }

        // Punctuation, longest match first.
        let mut matched = false;
        for p in PUNCTS {
            let pl = p.chars().count();
            if i + pl <= len && chars[i..i + pl].iter().collect::<String>() == **p {
                out.push(Token {
                    kind: TokenKind::Punct,
                    text: (*p).to_string(),
                    line,
                    start: i,
                    end: i + pl,
                });
                i += pl;
                matched = true;
                break;
            }
        }
        if !matched {
            out.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                start: i,
                end: i + 1,
            });
            i += 1;
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Token index ranges (half-open) covered by `#[cfg(test)]` or `#[test]`
/// items — test-only code every rule except missing-docs ignores.
pub(crate) fn test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let mut j = i + 2;
            let mut depth = 1;
            let attr_start = j;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr: Vec<&str> = tokens[attr_start..j.saturating_sub(1)]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr =
                attr == ["test"] || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
            if is_test_attr {
                // Skip any further attributes/docs, then the item itself.
                let mut k = j;
                loop {
                    if tokens.get(k).is_some_and(|t| t.kind == TokenKind::Doc) {
                        k += 1;
                        continue;
                    }
                    if tokens.get(k).is_some_and(|t| t.is_punct("#"))
                        && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
                    {
                        let mut depth = 1;
                        k += 2;
                        while k < tokens.len() && depth > 0 {
                            if tokens[k].is_punct("[") {
                                depth += 1;
                            } else if tokens[k].is_punct("]") {
                                depth -= 1;
                            }
                            k += 1;
                        }
                        continue;
                    }
                    break;
                }
                // The item body: to the first `;` at brace depth 0, or the
                // matching `}` of its first `{`.
                let mut depth = 0usize;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        depth += 1;
                    } else if tokens[k].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    } else if tokens[k].is_punct(";") && depth == 0 {
                        k += 1;
                        break;
                    }
                    k += 1;
                }
                ranges.push((i, k));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Whether token index `idx` falls inside any of `ranges`.
pub(crate) fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(a, b)| idx >= a && idx < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        match std::fs::read_to_string(dir.join(name)) {
            Ok(src) => src,
            Err(e) => panic!("fixture {name}: {e}"),
        }
    }

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn raw_string_bodies_are_never_relexed() {
        let src = fixture("raw_strings.rs");
        let tokens = lex(&src);
        // The code-like text lives inside string bodies: no `unwrap`
        // ident, no `cfg` attribute, no test range may surface.
        assert!(
            !idents(&tokens).contains(&"unwrap"),
            "{:?}",
            idents(&tokens)
        );
        assert!(test_ranges(&tokens).is_empty());
        let strings: Vec<&Token> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strings.len(), 7, "one Str token per literal");
        assert!(strings.iter().any(|t| t.text.contains("// line comment")));
        assert!(strings
            .iter()
            .any(|t| t.text.contains("\"# embedded guard")));
        assert!(strings.iter().any(|t| t.text.contains("cfg(test)")));
    }

    #[test]
    fn lexing_stays_in_sync_after_raw_strings() {
        let src = fixture("raw_strings.rs");
        let tokens = lex(&src);
        let after = tokens
            .iter()
            .find(|t| t.is_ident("after_the_strings"))
            .map(|t| t.line);
        // The fn sits right after the string salvo; a desynced lexer
        // would swallow it or misreport its line.
        let expected = src
            .lines()
            .position(|l| l.contains("fn after_the_strings"))
            .map(|n| n + 1);
        assert_eq!(after, expected);
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text == "40"));
    }

    #[test]
    fn nested_block_comments_balance_at_depth() {
        let src = fixture("nested_comments.rs");
        let tokens = lex(&src);
        let names = idents(&tokens);
        for name in ["after_nested", "documented", "last_line_marker"] {
            assert!(names.contains(&name), "{name} swallowed by a comment");
        }
        // A quote inside a comment must not open a string.
        assert!(tokens.iter().all(|t| t.kind != TokenKind::Str));
        for value in ["7", "8", "9"] {
            assert!(tokens
                .iter()
                .any(|t| t.kind == TokenKind::Int && t.text == value));
        }
        // Block-comment newlines still count: the last fn's line is exact.
        let marker = tokens
            .iter()
            .find(|t| t.is_ident("last_line_marker"))
            .map(|t| t.line);
        let expected = src
            .lines()
            .position(|l| l.contains("fn last_line_marker"))
            .map(|n| n + 1);
        assert_eq!(marker, expected);
    }

    #[test]
    fn doc_block_comments_survive_nesting() {
        let src = fixture("nested_comments.rs");
        let tokens = lex(&src);
        let docs: Vec<&Token> = tokens.iter().filter(|t| t.kind == TokenKind::Doc).collect();
        // `//!` module doc + the `/** … */` block doc.
        assert_eq!(docs.len(), 2, "{docs:?}");
        assert!(docs
            .iter()
            .any(|t| t.text.contains("nested inside the doc")));
    }

    #[test]
    fn string_line_continuations_count_their_newline() {
        let src = "let a = \"one\\\ntwo\";\nfn marker() {}\n";
        let tokens = lex(src);
        let marker = tokens.iter().find(|t| t.is_ident("marker"));
        assert_eq!(marker.map(|t| t.line), Some(3));
    }

    #[test]
    fn spans_cover_the_source_text() {
        let src = fixture("mutation_targets.rs");
        let chars: Vec<char> = src.chars().collect();
        for t in lex(&src) {
            assert!(t.start < t.end && t.end <= chars.len(), "{t:?}");
            if matches!(t.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Punct) {
                let text: String = chars[t.start..t.end].iter().collect();
                assert_eq!(text, t.text, "span text mismatch at line {}", t.line);
            }
        }
    }
}
