//! `cargo xtask` — workspace maintenance tasks.
//!
//! * `cargo xtask lint` — the token-window protocol-hygiene lint pass
//!   described in `docs/verification.md`.
//! * `cargo xtask audit` — the reachability-based determinism audit
//!   (symbol + call-graph extraction, rules in `audit.rs`), with triaged
//!   exceptions in `crates/xtask/audit.allow`.
//! * `cargo xtask mutate` — single-token mutation testing over the
//!   protocol-critical sources, survivors manifested in
//!   `crates/xtask/mutants.allow`.
//!
//! All passes exit non-zero when a rule fires / a gate fails. See
//! `docs/static-analysis.md`.

mod audit;
mod callgraph;
mod lexer;
mod mutate;
mod rules;
mod symbols;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories under `crates/*/` whose `.rs` files the lint pass covers.
/// Integration tests, benches and fixtures are out of scope by design:
/// the rules police *library* code.
const SOURCE_DIR: &str = "src";

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/xtask; the workspace root is two up.
    let manifest = env_var("CARGO_MANIFEST_DIR");
    let mut root = PathBuf::from(manifest);
    root.pop();
    root.pop();
    root
}

fn env_var(key: &str) -> String {
    match std::env::var(key) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("xtask: {key} not set; run via `cargo xtask`");
            std::process::exit(2);
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        eprintln!("xtask: no crates/ directory under {}", root.display());
        return ExitCode::from(2);
    };
    let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        collect_rs(&crate_dir.join(SOURCE_DIR), &mut files);
    }

    let mut violations = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let Ok(rel) = file.strip_prefix(&root) else {
            continue;
        };
        let rel = rel.to_string_lossy().replace('\\', "/");
        match rules::lint_file(&root, &rel) {
            Ok(mut found) => {
                checked += 1;
                violations.append(&mut found);
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        }
    }

    for v in &violations {
        println!("{v}");
    }
    println!(
        "xtask lint: {} file(s) checked, {} violation(s)",
        checked,
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Reads every workspace source file the audit covers: `crates/*/src`
/// plus the facade crate's `src/`, as workspace-relative `(path, text)`
/// pairs in sorted order.
fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        collect_rs(&crate_dir.join(SOURCE_DIR), &mut files);
    }
    collect_rs(&root.join(SOURCE_DIR), &mut files);
    let mut out = Vec::new();
    for file in files {
        let Ok(rel) = file.strip_prefix(root) else {
            continue;
        };
        let rel = rel.to_string_lossy().replace('\\', "/");
        let text = std::fs::read_to_string(&file).map_err(|e| format!("{rel}: {e}"))?;
        out.push((rel, text));
    }
    Ok(out)
}

fn audit_cmd() -> ExitCode {
    let root = workspace_root();
    let sources = match workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask audit: {e}");
            return ExitCode::from(2);
        }
    };
    let allow_path = root.join("crates/xtask/audit.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match audit::parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("xtask audit: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let report = audit::audit_sources(&sources, &allow);
    for f in &report.findings {
        println!("{f}");
    }
    for s in &report.suppressed {
        println!("xtask audit: allowlisted: {s}");
    }
    for stale in &report.unused_allow {
        eprintln!("xtask audit: warning: stale allowlist entry `{stale}` matched nothing");
    }
    let deprecated = audit::deprecated_symbols(&sources);
    if deprecated.is_empty() {
        println!("xtask audit: deprecated symbols: none");
    } else {
        for (id, users) in &deprecated {
            println!("xtask audit: deprecated `{id}`: {users} internal user(s)");
        }
    }
    println!(
        "xtask audit: {} symbol(s), {} reachable, {} finding(s), {} allowlisted",
        report.symbols,
        report.reachable,
        report.findings.len(),
        report.suppressed.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("audit") => audit_cmd(),
        Some("mutate") => mutate::run(&workspace_root(), &args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint, audit, mutate)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <lint|audit|mutate>");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileContext};

    fn lint_as(path: &str, src: &str) -> Vec<String> {
        lint_source(FileContext { path }, src)
            .into_iter()
            .map(|v| v.rule.to_string())
            .collect()
    }

    fn fixture(name: &str) -> String {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        match std::fs::read_to_string(dir.join(name)) {
            Ok(src) => src,
            Err(e) => panic!("fixture {name}: {e}"),
        }
    }

    #[test]
    fn fixture_float_eq_fails() {
        let rules = lint_as("crates/demo/src/lib.rs", &fixture("float_eq.rs"));
        assert!(rules.contains(&"float-eq".to_string()), "{rules:?}");
    }

    #[test]
    fn fixture_wire_construction_fails() {
        let rules = lint_as("crates/demo/src/lib.rs", &fixture("wire_construction.rs"));
        assert_eq!(
            rules.iter().filter(|r| *r == "wire-construction").count(),
            2,
            "exactly the two expression-position constructions: {rules:?}"
        );
    }

    #[test]
    fn fixture_paper_ref_fails() {
        let rules = lint_as("crates/core/src/demo.rs", &fixture("missing_paper_ref.rs"));
        assert_eq!(
            rules.iter().filter(|r| *r == "paper-ref").count(),
            1,
            "only the undocumented item: {rules:?}"
        );
    }

    #[test]
    fn fixture_unwrap_fails() {
        let rules = lint_as("crates/demo/src/lib.rs", &fixture("unwrap.rs"));
        assert_eq!(
            rules.iter().filter(|r| *r == "no-unwrap").count(),
            2,
            "the unwrap and the expect, not the test-module ones: {rules:?}"
        );
    }

    #[test]
    fn fixture_timeout_constant_fails() {
        let rules = lint_as("crates/demo/src/lib.rs", &fixture("timeout_constant.rs"));
        assert_eq!(
            rules.iter().filter(|r| *r == "timeout-constant").count(),
            3,
            "the const, the let, and the field init — not the test module \
             or the pass-through bindings: {rules:?}"
        );
    }

    #[test]
    fn arq_home_may_pin_timeouts() {
        let src = "pub fn default_timeout() -> f64 { let base_timeout = 0.2; base_timeout }";
        let rules = lint_as("crates/sim/src/faults.rs", src);
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn clean_source_passes() {
        let rules = lint_as("crates/demo/src/lib.rs", &fixture("clean.rs"));
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn wire_home_may_construct() {
        let src = "pub fn read_request() -> WireMessage { WireMessage::ReadRequest }";
        let rules = lint_as("crates/sim/src/wire.rs", src);
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn binaries_may_unwrap() {
        let src = "fn main() { foo().unwrap(); }";
        let rules = lint_as("crates/demo/src/main.rs", src);
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn patterns_are_not_constructions() {
        let src = r#"
fn classify(m: &WireMessage) -> u8 {
    if matches!(m, WireMessage::ReadRequest) {
        return 0;
    }
    if let WireMessage::DeleteRequest { window } = m {
        let _ = window;
        return 1;
    }
    match m {
        WireMessage::ReadRequest => 2,
        WireMessage::DataResponse { allocate: true, .. } | WireMessage::DataResponse { .. } => 3,
        WireMessage::WritePropagation { version } if *version > 0 => 4,
        _ => 5,
    }
}
"#;
        let rules = lint_as("crates/demo/src/lib.rs", src);
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn integer_equality_is_fine() {
        let src = "fn f(a: u64, b: u64) -> bool { a == b && a != 3 }";
        let rules = lint_as("crates/demo/src/lib.rs", src);
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        // The real pass over the real tree, as CI runs it.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf);
        let Some(root) = root else {
            panic!("workspace root not found")
        };
        let mut files = Vec::new();
        let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
            panic!("crates/ missing")
        };
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            super::collect_rs(&dir.join("src"), &mut files);
        }
        let mut all = Vec::new();
        for file in &files {
            let Ok(rel) = file.strip_prefix(&root) else {
                continue;
            };
            let rel = rel.to_string_lossy().replace('\\', "/");
            match crate::rules::lint_file(&root, &rel) {
                Ok(mut v) => all.append(&mut v),
                Err(e) => panic!("{e}"),
            }
        }
        assert!(
            all.is_empty(),
            "workspace has lint violations:\n{}",
            all.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
