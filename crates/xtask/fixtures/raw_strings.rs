//! Lexer-hardening fixture: raw strings of every stripe. Nothing in any
//! string body may be re-lexed as code.

pub fn raw_strings() -> usize {
    let plain = r"no escapes \ here";
    let hashed = r#"contains "quotes", a // line comment, and /* a block */"#;
    let deep = r##"one "# embedded guard"##;
    let bytes = br#"raw bytes with "quotes""#;
    let c_plain = c"plain c string";
    let c_raw = cr#"raw c string with "quotes""#;
    let code_like = r#"#[cfg(test)] fn looks_like_code() { x.unwrap(); }"#;
    plain.len() + hashed.len() + deep.len() + bytes.len() + code_like.len()
}

fn after_the_strings() -> u32 {
    40 + 2
}
