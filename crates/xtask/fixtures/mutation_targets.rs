//! Mutation-engine fixture: a small corpus exercising every operator,
//! plus the positions the guards must leave alone.

pub fn arith(a: u64, b: u64) -> u64 {
    let sum = a + b;
    let diff = sum - 1;
    if a < b && diff <= 10 {
        return diff + 2;
    }
    let flag = !done(a);
    if flag || a >= b {
        count(a) + 3
    } else {
        match a {
            0 => 1,
            9 => b - a,
            _ => 4,
        }
    }
}

fn done(a: u64) -> bool {
    a == 0
}

fn count(a: u64) -> u64 {
    if a != 3 {
        a
    } else {
        5
    }
}

pub fn generics_must_survive(xs: Vec<u64>) -> Vec<u64> {
    // `Vec<u64>` and the turbofish are type syntax: no cmp-swap mutants
    // may be derived from these angle brackets.
    let mut out = Vec::<u64>::new();
    for x in xs {
        out.push(x);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_never_mutated() {
        assert_eq!(super::arith(1 + 1, 3), 5 - 1);
    }
}
