// Fixture: raw f64 equality in cost-accounting code — every comparison
// below must trip the float-eq rule.

pub fn compare_costs(total_cost: f64, other: f64) -> bool {
    total_cost == other
}

pub fn omega_is_free(omega: f64) -> bool {
    omega == 0.0
}

pub fn not_a_literal_but_costly(read_ratio: f64, write_ratio: f64) -> bool {
    read_ratio != write_ratio
}
