// Fixture: unwrap/expect in library code. The two calls in `brittle` must
// trip the no-unwrap rule; the test-module ones are exempt.

pub fn brittle(input: &str) -> u64 {
    let first = input.split(',').next().unwrap();
    first.parse().expect("a number")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: u64 = "7".parse().unwrap();
        assert_eq!(v, 7);
    }
}
