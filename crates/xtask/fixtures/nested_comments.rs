//! Lexer-hardening fixture: nested block comments at several depths.

/* level one /* level two /* level three */ still level two */ back to one */
pub fn after_nested() -> u32 {
    /* outer /* inner "quote inside a comment */ tail */
    7
}

/** doc block /* nested inside the doc */ continues */
pub fn documented() -> u32 {
    8
}

/* closes exactly: /* */ */
pub fn last_line_marker() -> u32 {
    9
}
