// Fixture: public items in mdr-core/mdr-analysis must cite the paper.
// `undocumented_threshold` must trip the paper-ref rule; the others are
// properly referenced (or not public API).

/// The write-frequency threshold above which ST1 beats ST2 (§5, Eq. 5.2).
pub fn documented_threshold(omega: f64) -> f64 {
    (1.0 + omega) / 2.0
}

/// A helper with prose but no citation.
pub fn undocumented_threshold(omega: f64) -> f64 {
    (1.0 - omega) / 2.0
}

/// Internal plumbing needs no citation.
pub(crate) fn internal_helper() {}

/// Cited via Theorem 7.1's competitiveness bound.
pub struct CompetitiveBound;
