//! Audit fixture: one positive case per determinism rule, all reachable
//! from the `pub fn … seed` root.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

pub fn run_cell(seed: u64) -> f64 {
    let started = Instant::now();
    let mut ambient = rand::thread_rng();
    let noise = rand::random::<f64>();
    let mut rng = StdRng::seed_from_u64(seed);
    helper() + noise + started.elapsed().as_secs_f64()
}

fn helper() -> f64 {
    let counts: HashMap<u64, u64> = HashMap::new();
    let mut total = 0.0;
    for (k, v) in &counts {
        total += (*k + *v) as f64;
    }
    for v in counts.values() {
        total += *v as f64;
    }
    total
}

#[deprecated(since = "0.2.0", note = "use new_entry")]
pub fn old_entry(x: u64) -> u64 {
    x
}

pub fn caller() -> u64 {
    old_entry(3)
}
