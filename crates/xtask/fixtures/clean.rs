// Fixture: idiomatic library code that every rule accepts — epsilon
// helpers for cost comparison, constructor helpers for wire messages,
// let-else instead of unwrap, and `.unwrap()` only mentioned in prose.

/// Costs within `1e-9` are equal; see the docs on `.unwrap()` usage.
pub fn costs_agree(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9
}

pub fn describe(m: &WireMessage) -> &'static str {
    match m {
        WireMessage::ReadRequest => "read",
        _ => "other",
    }
}

pub fn fetch(version: Option<u64>) -> u64 {
    let Some(version) = version else {
        panic!("no version recorded");
    };
    version
}

pub fn count_matches(haystack: &str) -> usize {
    haystack.matches("x").count()
}
