// Fixture: WireMessage construction outside wire.rs. The two expression-
// position literals must trip the wire-construction rule; the pattern
// matches must not.

pub fn forge_a_read() -> WireMessage {
    WireMessage::ReadRequest
}

pub fn forge_a_response(version: u64) -> WireMessage {
    WireMessage::DataResponse {
        version,
        allocate: true,
        window: None,
    }
}

pub fn inspect(m: &WireMessage) -> bool {
    matches!(m, WireMessage::ReadRequest)
        || matches!(m, WireMessage::DeleteRequest { window: Some(_) })
}
