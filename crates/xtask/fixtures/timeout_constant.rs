//! Fixture for the timeout-constant rule: three raw timing literals in
//! library code, one exempt in a test module, and several bindings that
//! merely move a timeout around.

const RETRY_TIMEOUT: f64 = 0.35;

pub struct Link {
    pub ack_timeout_secs: f64,
}

pub fn link(base: f64) -> Link {
    let timeout = 2.5;
    let forwarded_timeout = base;
    Link {
        ack_timeout_secs: timeout * forwarded_timeout,
    }
}

fn tuned() -> Link {
    Link {
        ack_timeout_secs: 0.125,
    }
}

pub fn threaded(retry_timeout: f64) -> f64 {
    let copied_timeout = retry_timeout;
    copied_timeout + RETRY_TIMEOUT + tuned().ack_timeout_secs
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_pin_timing() {
        let base_timeout = 0.01;
        assert!(base_timeout > 0.0);
    }
}
