//! Audit fixture: the negative cases. The same constructs the rules
//! fire on, placed where they are legitimate — unreachable helpers,
//! ordered maps, and test-only code — must produce zero findings.

use std::collections::{BTreeMap, HashMap};

fn never_called_from_a_root() -> f64 {
    // Hash iteration and wall-clock reads are fine in code the
    // determinism-critical roots cannot reach.
    let counts: HashMap<u64, u64> = HashMap::new();
    let mut total = 0.0;
    for v in counts.values() {
        total += *v as f64;
    }
    let _ = std::time::Instant::now();
    total
}

pub fn run_cell(seed: u64) -> u64 {
    // Ordered iteration is the blessed pattern.
    let ordered: BTreeMap<u64, u64> = BTreeMap::new();
    let mut sum = seed;
    for (k, v) in &ordered {
        sum += k + v;
    }
    // Membership operations on hash containers are order-insensitive and
    // allowed; only iteration is flagged.
    let members: HashMap<u64, u64> = HashMap::new();
    if members.contains_key(&sum) {
        sum += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_ambient_time_and_entropy() {
        let _ = std::time::Instant::now();
        let _ = rand::thread_rng();
    }
}
