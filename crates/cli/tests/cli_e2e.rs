//! End-to-end tests of the `mdr` binary itself (spawned as a process).

use std::process::Command;

fn mdr(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mdr"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_every_subcommand() {
    let (stdout, _, ok) = mdr(&["help"]);
    assert!(ok);
    for cmd in [
        "analyze",
        "recommend",
        "simulate",
        "worst-case",
        "trace",
        "multi",
    ] {
        assert!(stdout.contains(cmd), "help should mention {cmd}:\n{stdout}");
    }
}

#[test]
fn no_args_prints_help() {
    let (stdout, _, ok) = mdr(&[]);
    assert!(ok);
    assert!(stdout.contains("subcommands"));
}

#[test]
fn analyze_pipeline_via_process() {
    let (stdout, _, ok) = mdr(&[
        "analyze",
        "--policy",
        "SW9",
        "--model",
        "message:0.4",
        "--theta",
        "0.3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("expected cost per request"));
    assert!(stdout.contains("-competitive"));
}

#[test]
fn simulate_via_process() {
    let (stdout, _, ok) = mdr(&[
        "simulate",
        "--policy",
        "SW3",
        "--theta",
        "0.4",
        "--requests",
        "3000",
        "--seed",
        "5",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cost/request"));
}

#[test]
fn trace_via_process() {
    let (stdout, _, ok) = mdr(&["trace", "--policy", "SW1", "--schedule", "rw"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("delete-request-write"));
}

#[test]
fn errors_exit_nonzero_with_guidance() {
    let (_, stderr, ok) = mdr(&["analyze", "--policy", "LFU"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");
    assert!(stderr.contains("mdr help"));

    let (_, stderr, ok) = mdr(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
}

#[test]
fn recommend_matches_the_paper_guidance_via_process() {
    let (stdout, _, ok) = mdr(&["recommend", "--omega", "0.45"]);
    assert!(ok);
    assert!(
        stdout.contains("k ≥ 39"),
        "Corollary 4 quoted point:\n{stdout}"
    );
}
