//! End-to-end tests of the `mdr` binary itself (spawned as a process).

use std::process::Command;

fn mdr(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mdr"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_every_subcommand() {
    let (stdout, _, ok) = mdr(&["help"]);
    assert!(ok);
    for cmd in [
        "analyze",
        "recommend",
        "simulate",
        "serve",
        "bench",
        "worst-case",
        "trace",
        "multi",
    ] {
        assert!(stdout.contains(cmd), "help should mention {cmd}:\n{stdout}");
    }
}

#[test]
fn no_args_prints_help() {
    let (stdout, _, ok) = mdr(&[]);
    assert!(ok);
    assert!(stdout.contains("subcommands"));
}

#[test]
fn analyze_pipeline_via_process() {
    let (stdout, _, ok) = mdr(&[
        "analyze",
        "--policy",
        "SW9",
        "--model",
        "message:0.4",
        "--theta",
        "0.3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("expected cost per request"));
    assert!(stdout.contains("-competitive"));
}

#[test]
fn simulate_via_process() {
    let (stdout, _, ok) = mdr(&[
        "simulate",
        "--policy",
        "SW3",
        "--theta",
        "0.4",
        "--requests",
        "3000",
        "--seed",
        "5",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cost/request"));
}

#[test]
fn trace_via_process() {
    let (stdout, _, ok) = mdr(&["trace", "--policy", "SW1", "--schedule", "rw"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("delete-request-write"));
}

#[test]
fn errors_exit_nonzero_with_guidance() {
    let (_, stderr, ok) = mdr(&["analyze", "--policy", "LFU"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");
    assert!(stderr.contains("mdr help"));

    let (_, stderr, ok) = mdr(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
}

#[test]
fn recommend_matches_the_paper_guidance_via_process() {
    let (stdout, _, ok) = mdr(&["recommend", "--omega", "0.45"]);
    assert!(ok);
    assert!(
        stdout.contains("k ≥ 39"),
        "Corollary 4 quoted point:\n{stdout}"
    );
}

/// Spawns the binary with `input` piped to stdin.
fn mdr_with_stdin(args: &[&str], input: &str) -> (String, String, bool) {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_mdr"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(input.as_bytes())
        .expect("stdin accepts the session");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn serve_replays_the_pinned_fixture_session() {
    // The scripted tenant session and its byte-exact expected transcript
    // are pinned as fixtures; CI replays the same pair with a shell diff.
    let input = include_str!("fixtures/serve_session.in");
    let expected = include_str!("fixtures/serve_session.expected");
    let (stdout, stderr, ok) = mdr_with_stdin(&["serve", "--max-tenants", "4"], input);
    assert!(ok, "{stderr}");
    assert_eq!(
        stdout, expected,
        "serve wire output drifted from the pinned fixture"
    );
}

#[test]
fn durable_serve_survives_a_restart_with_identical_stats() {
    // Run 1 ends at EOF with *no* shutdown op — the daemon must still
    // flush the journal and cut a final checkpoint on its way out. Run 2
    // reopens the same --data-dir and must serve byte-identical
    // per-tenant stats. Both transcripts are pinned as fixtures.
    let dir = std::env::temp_dir().join(format!(
        "mdr-e2e-durable-{}-{}",
        std::process::id(),
        Box::leak(Box::new(0u8)) as *const u8 as usize,
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().expect("utf-8 temp path");

    let input = include_str!("fixtures/durable_session_1.in");
    let expected = include_str!("fixtures/durable_session_1.expected");
    let (stdout, stderr, ok) = mdr_with_stdin(&["serve", "--data-dir", dir_arg], input);
    assert!(ok, "{stderr}");
    assert_eq!(stdout, expected, "first durable run drifted");
    assert!(
        stderr.contains("recovery: 0 tenant(s) recovered"),
        "{stderr}"
    );

    let input = include_str!("fixtures/durable_session_2.in");
    let expected = include_str!("fixtures/durable_session_2.expected");
    let (stdout, stderr, ok) = mdr_with_stdin(&["serve", "--data-dir", dir_arg], input);
    assert!(ok, "{stderr}");
    assert_eq!(stdout, expected, "stats changed across the restart");
    assert!(
        stderr.contains("recovery: 2 tenant(s) recovered"),
        "{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_flags_require_data_dir() {
    let (_, stderr, ok) = mdr_with_stdin(&["serve", "--fsync", "always"], "");
    assert!(!ok);
    assert!(stderr.contains("--fsync requires --data-dir"), "{stderr}");

    let (_, stderr, ok) = mdr_with_stdin(&["serve", "--checkpoint-every", "8"], "");
    assert!(!ok);
    assert!(
        stderr.contains("--checkpoint-every requires --data-dir"),
        "{stderr}"
    );
}

#[test]
fn serve_stops_at_eof_without_shutdown() {
    let (stdout, _, ok) = mdr_with_stdin(
        &["serve"],
        "{\"op\":\"open\",\"tenant\":\"a\",\"policy\":\"ST2\"}\n",
    );
    assert!(ok);
    assert!(stdout.contains("\"ok\":\"open\""), "{stdout}");
}

#[test]
fn serve_budget_sheds_via_process() {
    let session = "{\"op\":\"open\",\"tenant\":\"a\"}\n\
                   {\"op\":\"decide\",\"tenant\":\"a\",\"request\":\"r\"}\n\
                   {\"op\":\"decide\",\"tenant\":\"a\",\"request\":\"r\"}\n";
    let (stdout, _, ok) = mdr_with_stdin(&["serve", "--budget", "1"], session);
    assert!(ok);
    assert!(stdout.contains("\"shed\":\"budget-exhausted\""), "{stdout}");
}

#[test]
fn bench_serve_reports_decisions_per_second() {
    let (stdout, _, ok) = mdr(&[
        "bench",
        "--preset",
        "serve",
        "--tenants",
        "2",
        "--requests",
        "200",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("bench serve/fast"), "{stdout}");
    assert!(stdout.contains("events/sec"), "{stdout}");
    assert!(stdout.contains("ledger digest: 0x"), "{stdout}");
}
