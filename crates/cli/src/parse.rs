//! Argument parsing for the `mdr` CLI: policy specs, cost models, and the
//! flag grammar. Hand-rolled (the surface is tiny) and fully unit-tested.

use mdr_core::{CostModel, PolicySpec};
use std::collections::BTreeMap;
use std::fmt;

/// A CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CliError(pub(crate) String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parses a policy name: `ST1`, `ST2`, `SW<k>`, `T1:<m>`, `T2:<m>`
/// (case-insensitive). Delegates to [`PolicySpec`]'s `FromStr` — the
/// inverse of its canonical `Display` — so the CLI, the serve wire
/// format, and library users all accept the same grammar.
pub(crate) fn parse_policy(s: &str) -> Result<PolicySpec, CliError> {
    s.parse()
        .map_err(|e: mdr_core::ParsePolicyError| CliError(e.to_string()))
}

/// Parses a cost model: `connection` or `message:<omega>` (e.g.
/// `message:0.4`); `message` alone defaults to ω = 0.5. Delegates to
/// [`CostModel`]'s `FromStr`.
pub(crate) fn parse_model(s: &str) -> Result<CostModel, CliError> {
    s.parse()
        .map_err(|e: mdr_core::ParseModelError| CliError(e.to_string()))
}

/// Parses a journal fsync policy: `always`, `never`, or `interval[:N]`
/// (`interval` alone syncs every 64 records).
pub(crate) fn parse_fsync(s: &str) -> Result<mdr_sim::FsyncPolicy, CliError> {
    use mdr_sim::FsyncPolicy;
    match s {
        "always" => Ok(FsyncPolicy::Always),
        "never" => Ok(FsyncPolicy::Never),
        "interval" => Ok(FsyncPolicy::Interval(64)),
        other => {
            if let Some(n) = other.strip_prefix("interval:") {
                let n: u64 = n
                    .parse()
                    .map_err(|_| CliError(format!("invalid fsync interval {n:?}")))?;
                if n == 0 {
                    return err("--fsync interval must be at least 1");
                }
                return Ok(FsyncPolicy::Interval(n));
            }
            err(format!(
                "unknown fsync policy {other:?}; expected always, never, or interval[:N]"
            ))
        }
    }
}

/// A parsed flag set: `--key value` pairs plus the subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` flags in order-independent form.
    pub flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    pub(crate) fn parse(argv: &[String]) -> Result<Args, CliError> {
        let Some((command, rest)) = argv.split_first() else {
            return err("missing subcommand");
        };
        if command.starts_with("--") {
            return err(format!("expected a subcommand before {command:?}"));
        }
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < rest.len() {
            let key = &rest[i];
            let Some(name) = key.strip_prefix("--") else {
                return err(format!("expected a --flag, got {key:?}"));
            };
            let Some(value) = rest.get(i + 1) else {
                return err(format!("flag --{name} needs a value"));
            };
            if flags.insert(name.to_owned(), value.clone()).is_some() {
                return err(format!("duplicate flag --{name}"));
            }
            i += 2;
        }
        Ok(Args {
            command: command.clone(),
            flags,
        })
    }

    /// A required flag.
    pub(crate) fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required flag --{name}")))
    }

    /// An optional flag with a default.
    pub(crate) fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map_or(default, String::as_str)
    }

    /// A parsed optional numeric flag.
    pub(crate) fn number<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("invalid value {v:?} for --{name}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_parse() {
        assert_eq!(parse_policy("st1").unwrap(), PolicySpec::St1);
        assert_eq!(parse_policy("ST2").unwrap(), PolicySpec::St2);
        assert_eq!(
            parse_policy("sw9").unwrap(),
            PolicySpec::SlidingWindow { k: 9 }
        );
        assert_eq!(parse_policy("T1:5").unwrap(), PolicySpec::T1 { m: 5 });
        assert_eq!(parse_policy("t2(3)").unwrap(), PolicySpec::T2 { m: 3 });
    }

    #[test]
    fn bad_policies_rejected() {
        assert!(parse_policy("SW4").is_err(), "even window");
        assert!(parse_policy("SW0").is_err());
        assert!(parse_policy("T1:0").is_err());
        assert!(parse_policy("LRU").is_err());
        assert!(parse_policy("SWx").is_err());
    }

    #[test]
    fn models_parse() {
        assert_eq!(parse_model("connection").unwrap(), CostModel::Connection);
        assert_eq!(parse_model("message:0.4").unwrap(), CostModel::message(0.4));
        assert_eq!(parse_model("msg:1").unwrap(), CostModel::message(1.0));
        assert_eq!(parse_model("message").unwrap(), CostModel::message(0.5));
    }

    #[test]
    fn bad_models_rejected() {
        assert!(parse_model("message:1.5").is_err());
        assert!(parse_model("message:x").is_err());
        assert!(parse_model("minutes").is_err());
    }

    #[test]
    fn fsync_policies_parse() {
        use mdr_sim::FsyncPolicy;
        assert_eq!(parse_fsync("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(parse_fsync("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(parse_fsync("interval").unwrap(), FsyncPolicy::Interval(64));
        assert_eq!(parse_fsync("interval:7").unwrap(), FsyncPolicy::Interval(7));
    }

    #[test]
    fn bad_fsync_policies_rejected() {
        assert!(parse_fsync("interval:0").is_err());
        assert!(parse_fsync("interval:x").is_err());
        assert!(parse_fsync("sometimes").is_err());
        assert!(parse_fsync("ALWAYS").is_err());
    }

    #[test]
    fn args_parse() {
        let argv: Vec<String> = ["simulate", "--policy", "SW9", "--theta", "0.3"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let args = Args::parse(&argv).unwrap();
        assert_eq!(args.command, "simulate");
        assert_eq!(args.required("policy").unwrap(), "SW9");
        assert_eq!(args.number::<f64>("theta", 0.5).unwrap(), 0.3);
        assert_eq!(args.number::<u64>("seed", 7).unwrap(), 7);
        assert_eq!(args.get_or("model", "connection"), "connection");
    }

    #[test]
    fn args_errors() {
        let to_vec = |v: &[&str]| v.iter().map(ToString::to_string).collect::<Vec<_>>();
        assert!(Args::parse(&to_vec(&[])).is_err());
        assert!(Args::parse(&to_vec(&["--policy", "x"])).is_err());
        assert!(Args::parse(&to_vec(&["run", "--policy"])).is_err());
        assert!(Args::parse(&to_vec(&["run", "stray"])).is_err());
        assert!(Args::parse(&to_vec(&["run", "--a", "1", "--a", "2"])).is_err());
        let args = Args::parse(&to_vec(&["run", "--n", "abc"])).unwrap();
        assert!(args.number::<u64>("n", 0).is_err());
        assert!(args.required("missing").is_err());
    }
}
