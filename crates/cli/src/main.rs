//! `mdr` — the command-line face of the SIGMOD 1994 mobile data-replication
//! library. See `mdr help`.

mod commands;
mod parse;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" || argv[0] == "-h" {
        print!("{}", commands::help());
        return;
    }
    let result = parse::Args::parse(&argv).and_then(|args| commands::dispatch(&args));
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `mdr help` for usage");
            std::process::exit(2);
        }
    }
}
