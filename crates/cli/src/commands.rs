//! The `mdr` subcommands. Each returns its report as a `String` so the
//! logic is unit-testable without capturing stdout.

use crate::parse::{parse_model, parse_policy, Args, CliError};
use mdr_adversary::{cycle_ratio, exhaustive_search, generators, measure};
use mdr_analysis::dominance::{connection_winner, message_winner, Winner};
use mdr_analysis::window_choice::{min_beneficial_k, recommend_k};
use mdr_analysis::{average_expected_cost, competitive_factor, expected_cost};
use mdr_core::{trace_policy, CostModel, PolicySpec, Schedule};
use mdr_sim::{FaultPlan, PoissonWorkload, RunLimit, SimConfig, Simulation};
use std::fmt::Write as _;

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// `mdr analyze --policy SW9 --model message:0.4 [--theta 0.3]`
pub(crate) fn analyze(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let model = parse_model(args.get_or("model", "connection"))?;
    let mut out = String::new();
    let _ = writeln!(out, "policy: {spec}   model: {model}");
    if let Some(theta) = args.flags.get("theta") {
        let theta: f64 = theta
            .parse()
            .map_err(|_| CliError(format!("invalid θ {theta:?}")))?;
        if !(0.0..=1.0).contains(&theta) {
            return err("θ must lie in [0, 1]");
        }
        let _ = writeln!(
            out,
            "expected cost per request at θ = {theta}: {:.6}",
            expected_cost(spec, model, theta)
        );
    }
    let _ = writeln!(
        out,
        "average expected cost (θ uniform): {:.6}",
        average_expected_cost(spec, model)
    );
    match competitive_factor(spec, model) {
        Some(c) => {
            let _ = writeln!(out, "competitiveness: {c:.4}-competitive");
        }
        None => {
            let _ = writeln!(
                out,
                "competitiveness: NOT competitive (worst case unbounded)"
            );
        }
    }
    Ok(out)
}

/// `mdr recommend --omega 0.4 [--theta 0.3] [--slack 0.10]`
pub(crate) fn recommend(args: &Args) -> Result<String, CliError> {
    let omega: f64 = args.number("omega", -1.0)?;
    let mut out = String::new();
    match args.flags.get("theta") {
        Some(theta) => {
            let theta: f64 = theta
                .parse()
                .map_err(|_| CliError(format!("invalid θ {theta:?}")))?;
            // Fixed, known θ: the dominance maps.
            if omega >= 0.0 {
                let w = message_winner(theta, omega);
                let _ = writeln!(
                    out,
                    "message model (ω = {omega}), θ = {theta} fixed: run {} \
                     (Figure 1 region; EXP = {:.4})",
                    name(w),
                    expected_cost(w.spec(), CostModel::message(omega), theta)
                );
            }
            let w = connection_winner(theta);
            let _ = writeln!(
                out,
                "connection model, θ = {theta} fixed: run {} (EXP = {:.4})",
                name(w),
                expected_cost(w.spec(), CostModel::Connection, theta)
            );
        }
        None => {
            // Drifting θ: the §9 guidance.
            let slack: f64 = args.number("slack", 0.10)?;
            let rec = recommend_k(slack);
            let _ = writeln!(
                out,
                "connection model, θ drifting: run SW{} \
                 (AVG within {:.1}% of the optimum, {}-competitive)",
                rec.k,
                rec.avg_excess * 100.0,
                rec.competitive_factor
            );
            if omega >= 0.0 {
                match min_beneficial_k(omega) {
                    None => {
                        let _ = writeln!(
                            out,
                            "message model (ω = {omega}), θ drifting: run SW1 \
                             (ω ≤ 0.4: best AVG of all windows, Corollary 3)"
                        );
                    }
                    Some(k0) => {
                        let _ = writeln!(
                            out,
                            "message model (ω = {omega}), θ drifting: run SWk with k ≥ {k0} \
                             (Corollary 4 threshold)"
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

/// `mdr simulate --policy SW9 --theta 0.3 [--requests 50000] [--seed 42]
/// [--omega 0.3] [--latency 0.01] [--faults RATE] [--outage T]
/// [--crash-prob P] [--volatile-prob P]`
pub(crate) fn simulate(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let theta: f64 = args.number("theta", 0.5)?;
    if !(0.0..=1.0).contains(&theta) {
        return err("θ must lie in [0, 1]");
    }
    let requests: usize = args.number("requests", 50_000)?;
    let seed: u64 = args.number("seed", 42)?;
    let latency: f64 = args.number("latency", 0.01)?;
    let omega: f64 = args.number("omega", 0.5)?;
    let fault_rate: f64 = args.number("faults", 0.0)?;
    let mut config = SimConfig::new(spec).with_latency(latency);
    if fault_rate > 0.0 {
        let outage: f64 = args.number("outage", 2.0)?;
        let crash: f64 = args.number("crash-prob", 0.3)?;
        let volatile: f64 = args.number("volatile-prob", 0.5)?;
        let plan = FaultPlan::new(fault_rate, outage, seed ^ 0xFA17)
            .and_then(|p| p.with_crashes(crash, volatile))
            .map_err(|e| CliError(e.to_string()))?;
        config = config.with_faults(plan);
    }
    let mut sim = Simulation::new(config);
    let mut workload = PoissonWorkload::from_theta(1.0, theta, seed);
    let report = sim.run(&mut workload, RunLimit::Requests(requests));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "policy {spec} on {requests} Poisson requests (θ = {theta}, seed {seed})"
    );
    let _ = writeln!(
        out,
        "  connections: {}   data messages: {}   control messages: {}",
        report.connections, report.data_messages, report.control_messages
    );
    let _ = writeln!(
        out,
        "  cost/request: {:.4} (connection model), {:.4} (message model, ω = {omega})",
        report.cost_per_request(CostModel::Connection),
        report.cost_per_request(CostModel::message(omega)),
    );
    let _ = writeln!(
        out,
        "  replica: {} allocations, {} deallocations; mean read latency {:.4}; {} queued",
        report.allocations, report.deallocations, report.mean_read_latency, report.queued_requests
    );
    if fault_rate > 0.0 {
        let _ = writeln!(
            out,
            "  faults: {} disconnects ({} MC crashes), {} reconciliations",
            report.disconnects, report.mc_crashes, report.reconciliations
        );
        let _ = writeln!(
            out,
            "  recovery bill: {} aborted + {} handshake messages; {} stale deliveries discarded",
            report.aborted_messages, report.reconciliation_messages, report.discarded_deliveries
        );
    }
    let _ = writeln!(
        out,
        "  theory: EXP = {:.4} (connection), {:.4} (message ω = {omega})",
        expected_cost(spec, CostModel::Connection, theta),
        expected_cost(spec, CostModel::message(omega), theta),
    );
    Ok(out)
}

/// `mdr worst-case --policy SW5 --model message:0.5 [--max-len 13]
/// [--cycles 300]`
pub(crate) fn worst_case(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let model = parse_model(args.get_or("model", "connection"))?;
    let max_len: usize = args.number("max-len", 13)?;
    if !(1..=20).contains(&max_len) {
        return err("--max-len must lie in 1..=20");
    }
    let cycles: usize = args.number("cycles", 300)?;
    let mut out = String::new();
    let _ = writeln!(out, "policy: {spec}   model: {model}");
    match competitive_factor(spec, model) {
        Some(claimed) => {
            let _ = writeln!(out, "claimed factor: {claimed:.4}");
            let schedule = generators::adversarial_for(spec, cycles);
            let warmup = Schedule::new();
            let r = cycle_ratio(spec, &warmup, &schedule, 1, model);
            let _ = writeln!(
                out,
                "ratio on the adversarial schedule ({} requests): {}",
                schedule.len(),
                r.ratio.map_or_else(|| "∞".into(), |x| format!("{x:.4}"))
            );
        }
        None => {
            let schedule = generators::adversarial_for(spec, 1_000);
            let r = measure(spec, &schedule, model);
            let _ = writeln!(
                out,
                "NOT competitive: on {} the policy pays {:.1} while OPT pays {:.1}",
                if matches!(spec, PolicySpec::St1) {
                    "r^1000"
                } else {
                    "w^1000"
                },
                r.policy_cost,
                r.opt_cost
            );
        }
    }
    let search = exhaustive_search(spec, model, max_len);
    let _ = writeln!(
        out,
        "exhaustive worst over all {} schedules (length ≤ {max_len}): ratio {} on {}",
        search.examined,
        search
            .worst
            .ratio
            .map_or_else(|| "∞".into(), |x| format!("{x:.4}")),
        search.worst_schedule
    );
    Ok(out)
}

/// `mdr trace --schedule rrwwr --policy SW3 [--model connection]`
pub(crate) fn trace(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let model = parse_model(args.get_or("model", "connection"))?;
    let schedule: Schedule = args
        .required("schedule")?
        .parse()
        .map_err(|e| CliError(format!("bad schedule: {e}")))?;
    let mut policy = spec.build();
    let steps = trace_policy(policy.as_mut(), &schedule, model);
    let mut out = String::new();
    let _ = writeln!(out, "{spec} on {schedule} under {model}:");
    let _ = writeln!(
        out,
        "{:>4}  {:>3}  {:<28} {:>8}  copy",
        "#", "req", "action", "cost"
    );
    let mut total = 0.0;
    for s in &steps {
        total += s.cost;
        let _ = writeln!(
            out,
            "{:>4}  {:>3}  {:<28} {:>8.3}  {}",
            s.index,
            s.request.to_string(),
            s.action.to_string(),
            s.cost,
            if s.copy_after { "yes" } else { "no" }
        );
    }
    let _ = writeln!(out, "total cost: {total:.3}");
    Ok(out)
}

/// `mdr multi --profile profile.json` — the JSON is a map from class names
/// like `"r{0,1}"` / `"w{2}"` to rates.
pub(crate) fn multi(args: &Args) -> Result<String, CliError> {
    let path = args.required("profile")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    let raw: std::collections::BTreeMap<String, f64> =
        serde_json::from_str(&text).map_err(|e| CliError(format!("invalid JSON profile: {e}")))?;
    let mut entries = Vec::new();
    let mut n_objects = 0usize;
    for (class, rate) in &raw {
        let (kind, objs) = parse_class(class)?;
        n_objects = n_objects.max(objs.iter().copied().max().map_or(0, |m| m + 1));
        let set = mdr_multi::ObjectSet::from_objects(&objs);
        let op = match kind {
            'r' => mdr_multi::Operation::read(set),
            _ => mdr_multi::Operation::write(set),
        };
        entries.push((op, *rate));
    }
    if n_objects == 0 {
        return err("profile names no objects");
    }
    let profile = mdr_multi::OperationProfile::new(n_objects, entries);
    let (best, cost) = profile.optimal_allocation();
    let mut out = String::new();
    let _ = writeln!(out, "objects: {n_objects}   classes: {}", raw.len());
    let _ = writeln!(out, "optimal static allocation: replicate {}", best.0);
    let _ = writeln!(out, "expected cost per operation: {cost:.6}");
    let _ = writeln!(
        out,
        "for comparison: replicate nothing {:.6}, replicate all {:.6}",
        profile.expected_cost(mdr_multi::Allocation::EMPTY),
        profile.expected_cost(mdr_multi::Allocation::full(n_objects)),
    );
    Ok(out)
}

fn parse_class(s: &str) -> Result<(char, Vec<usize>), CliError> {
    let mut chars = s.chars();
    let kind = chars.next().unwrap_or(' ');
    if kind != 'r' && kind != 'w' {
        return err(format!("class {s:?} must start with 'r' or 'w'"));
    }
    let rest: String = chars.collect();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| CliError(format!("class {s:?} must look like r{{0,1}}")))?;
    let objs = inner
        .split(',')
        .map(|x| {
            x.trim()
                .parse::<usize>()
                .map_err(|_| CliError(format!("bad object index {x:?} in {s:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((kind, objs))
}

fn name(w: Winner) -> &'static str {
    match w {
        Winner::St1 => "ST1",
        Winner::St2 => "ST2",
        Winner::Sw1 => "SW1",
    }
}

/// Dispatches a parsed command line.
pub(crate) fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "analyze" => analyze(args),
        "recommend" => recommend(args),
        "simulate" => simulate(args),
        "worst-case" => worst_case(args),
        "trace" => trace(args),
        "multi" => multi(args),
        other => err(format!("unknown subcommand {other:?}; see `mdr help`")),
    }
}

/// The help text.
pub(crate) fn help() -> String {
    "mdr — data replication for mobile computers (SIGMOD 1994)

subcommands:
  analyze    --policy <P> [--model M] [--theta T]      closed-form costs & competitiveness
  recommend  [--theta T] [--omega W] [--slack S]       which policy to run (Figure 1 / §9)
  simulate   --policy <P> [--theta T] [--requests N] [--seed S] [--omega W] [--latency L]
             [--faults RATE] [--outage T] [--crash-prob P] [--volatile-prob P]
             (RATE > 0 injects MC disconnections/crashes + reconnection recovery)
  worst-case --policy <P> [--model M] [--max-len L] [--cycles C]
  trace      --policy <P> --schedule rrwwr [--model M] per-request execution trace
  multi      --profile profile.json                    §7.2 optimal multi-object allocation

policies: ST1, ST2, SW<k> (odd k), T1:<m>, T2:<m>
models:   connection | message:<omega>   (ω ∈ [0,1])
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = argv.iter().map(ToString::to_string).collect();
        dispatch(&Args::parse(&v).unwrap())
    }

    #[test]
    fn analyze_reports_formulas() {
        let out = run(&["analyze", "--policy", "SW9", "--theta", "0.3"]).unwrap();
        assert!(out.contains("expected cost"));
        assert!(out.contains("10.0000-competitive"));
        let out = run(&["analyze", "--policy", "ST1"]).unwrap();
        assert!(out.contains("NOT competitive"));
    }

    #[test]
    fn recommend_fixed_theta_uses_figure_1() {
        let out = run(&["recommend", "--theta", "0.6", "--omega", "0.4"]).unwrap();
        assert!(out.contains("run SW1"), "{out}");
        let out = run(&["recommend", "--theta", "0.9", "--omega", "0.4"]).unwrap();
        assert!(out.contains("run ST1"), "{out}");
    }

    #[test]
    fn recommend_drifting_uses_section_9() {
        let out = run(&["recommend", "--slack", "0.10"]).unwrap();
        assert!(out.contains("SW9"), "{out}");
        let out = run(&["recommend", "--omega", "0.8"]).unwrap();
        assert!(out.contains("k ≥ 7"), "{out}");
        let out = run(&["recommend", "--omega", "0.3"]).unwrap();
        assert!(out.contains("run SW1"), "{out}");
    }

    #[test]
    fn simulate_runs_and_reports() {
        let out = run(&[
            "simulate",
            "--policy",
            "SW3",
            "--theta",
            "0.4",
            "--requests",
            "2000",
            "--seed",
            "1",
        ])
        .unwrap();
        assert!(out.contains("cost/request"));
        assert!(out.contains("theory"));
    }

    #[test]
    fn simulate_with_faults_reports_recovery() {
        let argv = [
            "simulate",
            "--policy",
            "SW3",
            "--theta",
            "0.4",
            "--requests",
            "3000",
            "--seed",
            "7",
            "--latency",
            "0.05",
            "--faults",
            "0.05",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("reconciliations"), "{out}");
        assert!(out.contains("recovery bill"), "{out}");
        // Identical command lines replay identical reports (fault
        // determinism through the CLI surface).
        assert_eq!(out, run(&argv).unwrap());
        // An invalid fault mix is a friendly error, not a panic.
        assert!(run(&[
            "simulate",
            "--policy",
            "SW3",
            "--faults",
            "0.05",
            "--crash-prob",
            "1.5",
        ])
        .is_err());
    }

    #[test]
    fn worst_case_reports_ratios() {
        let out = run(&[
            "worst-case",
            "--policy",
            "SW3",
            "--max-len",
            "10",
            "--cycles",
            "50",
        ])
        .unwrap();
        assert!(out.contains("claimed factor: 4.0000"), "{out}");
        assert!(out.contains("exhaustive worst"));
        let out = run(&["worst-case", "--policy", "ST2", "--max-len", "8"]).unwrap();
        assert!(out.contains("NOT competitive"), "{out}");
    }

    #[test]
    fn trace_prints_steps() {
        let out = run(&["trace", "--policy", "SW3", "--schedule", "rrw"]).unwrap();
        assert!(out.contains("remote-read+allocate"), "{out}");
        assert!(out.contains("total cost"));
    }

    #[test]
    fn multi_reads_json_profile() {
        let dir = std::env::temp_dir().join("mdr-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        std::fs::write(
            &path,
            r#"{"r{0}": 8.0, "w{0}": 1.0, "r{1}": 1.0, "w{1}": 8.0, "r{0,1}": 1.0}"#,
        )
        .unwrap();
        let out = run(&["multi", "--profile", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("optimal static allocation"), "{out}");
        assert!(
            out.contains("{0}"),
            "replicate the read-heavy object: {out}"
        );
    }

    #[test]
    fn bad_inputs_give_friendly_errors() {
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["analyze"]).is_err(), "missing --policy");
        assert!(run(&["analyze", "--policy", "SW4"]).is_err(), "even k");
        assert!(run(&["trace", "--policy", "SW3", "--schedule", "rxw"]).is_err());
        assert!(run(&["worst-case", "--policy", "SW3", "--max-len", "25"]).is_err());
    }

    #[test]
    fn class_parser() {
        assert_eq!(parse_class("r{0,2}").unwrap(), ('r', vec![0, 2]));
        assert_eq!(parse_class("w{1}").unwrap(), ('w', vec![1]));
        assert!(parse_class("x{0}").is_err());
        assert!(parse_class("r0").is_err());
        assert!(parse_class("r{a}").is_err());
    }
}
