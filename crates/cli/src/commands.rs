//! The `mdr` subcommands. Each returns its report as a `String` so the
//! logic is unit-testable without capturing stdout.

use crate::parse::{parse_fsync, parse_model, parse_policy, Args, CliError};
use mdr_adversary::{cycle_ratio, exhaustive_search, generators, measure};
use mdr_analysis::dominance::{connection_winner, message_winner, Winner};
use mdr_analysis::window_choice::{min_beneficial_k, recommend_k};
use mdr_analysis::{average_expected_cost, competitive_factor, expected_cost};
use mdr_bench::sweep::{e17_fault_plan, e18_arq, preset, summary_table};
use mdr_bench::{BenchSnapshot, RunCfg};
use mdr_core::{trace_policy, CostModel, PolicySpec, Schedule};
use mdr_sim::engine::{run_serve_bench, serve_bench_lines, ServeConfig, ServeEngine};
use mdr_sim::perf::Stopwatch;
use mdr_sim::sweep::{SweepGrid, SweepOptions};
use mdr_sim::{
    ArqConfig, DurableServe, FaultPlan, JournalConfig, PoissonWorkload, RunLimit, SimBuilder,
    TopologyConfig,
};
use std::fmt::Write as _;

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// `mdr analyze --policy SW9 --model message:0.4 [--theta 0.3]`
pub(crate) fn analyze(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let model = parse_model(args.get_or("model", "connection"))?;
    let mut out = String::new();
    let _ = writeln!(out, "policy: {spec}   model: {model}");
    if let Some(theta) = args.flags.get("theta") {
        let theta: f64 = theta
            .parse()
            .map_err(|_| CliError(format!("invalid θ {theta:?}")))?;
        if !(0.0..=1.0).contains(&theta) {
            return err("θ must lie in [0, 1]");
        }
        let _ = writeln!(
            out,
            "expected cost per request at θ = {theta}: {:.6}",
            expected_cost(spec, model, theta)
        );
    }
    let _ = writeln!(
        out,
        "average expected cost (θ uniform): {:.6}",
        average_expected_cost(spec, model)
    );
    match competitive_factor(spec, model) {
        Some(c) => {
            let _ = writeln!(out, "competitiveness: {c:.4}-competitive");
        }
        None => {
            let _ = writeln!(
                out,
                "competitiveness: NOT competitive (worst case unbounded)"
            );
        }
    }
    Ok(out)
}

/// `mdr recommend --omega 0.4 [--theta 0.3] [--slack 0.10]`
pub(crate) fn recommend(args: &Args) -> Result<String, CliError> {
    let omega: f64 = args.number("omega", -1.0)?;
    let mut out = String::new();
    match args.flags.get("theta") {
        Some(theta) => {
            let theta: f64 = theta
                .parse()
                .map_err(|_| CliError(format!("invalid θ {theta:?}")))?;
            // Fixed, known θ: the dominance maps.
            if omega >= 0.0 {
                let w = message_winner(theta, omega);
                let _ = writeln!(
                    out,
                    "message model (ω = {omega}), θ = {theta} fixed: run {} \
                     (Figure 1 region; EXP = {:.4})",
                    name(w),
                    expected_cost(w.spec(), CostModel::message(omega), theta)
                );
            }
            let w = connection_winner(theta);
            let _ = writeln!(
                out,
                "connection model, θ = {theta} fixed: run {} (EXP = {:.4})",
                name(w),
                expected_cost(w.spec(), CostModel::Connection, theta)
            );
        }
        None => {
            // Drifting θ: the §9 guidance.
            let slack: f64 = args.number("slack", 0.10)?;
            let rec = recommend_k(slack);
            let _ = writeln!(
                out,
                "connection model, θ drifting: run SW{} \
                 (AVG within {:.1}% of the optimum, {}-competitive)",
                rec.k,
                rec.avg_excess * 100.0,
                rec.competitive_factor
            );
            if omega >= 0.0 {
                match min_beneficial_k(omega) {
                    None => {
                        let _ = writeln!(
                            out,
                            "message model (ω = {omega}), θ drifting: run SW1 \
                             (ω ≤ 0.4: best AVG of all windows, Corollary 3)"
                        );
                    }
                    Some(k0) => {
                        let _ = writeln!(
                            out,
                            "message model (ω = {omega}), θ drifting: run SWk with k ≥ {k0} \
                             (Corollary 4 threshold)"
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

/// `mdr simulate --policy SW9 --theta 0.3 [--requests 50000] [--seed 42]
/// [--omega 0.3] [--latency 0.01] [--faults RATE] [--outage T]
/// [--crash-prob P] [--volatile-prob P] [--arq-loss P] [--arq-timeout T]
/// [--arq-budget N] [--arq-backoff F] [--arq-jitter J] [--arq-deadline D]
/// [--cells N] [--mobility RATE] [--handoff-deadline D] [--handoff-loss P]
/// [--broadcast-inv on]`
pub(crate) fn simulate(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let theta: f64 = args.number("theta", 0.5)?;
    if !(0.0..=1.0).contains(&theta) {
        return err("θ must lie in [0, 1]");
    }
    let requests: usize = args.number("requests", 50_000)?;
    let seed: u64 = args.number("seed", 42)?;
    let latency: f64 = args.number("latency", 0.01)?;
    let omega: f64 = args.number("omega", 0.5)?;
    let fault_rate: f64 = args.number("faults", 0.0)?;
    let mut builder = SimBuilder::new(spec)
        .and_then(|b| b.latency(latency))
        .map_err(|e| CliError(e.to_string()))?;
    if fault_rate > 0.0 {
        let outage: f64 = args.number("outage", 2.0)?;
        let crash: f64 = args.number("crash-prob", 0.3)?;
        let volatile: f64 = args.number("volatile-prob", 0.5)?;
        let plan = FaultPlan::new(fault_rate, outage, seed ^ 0xFA17)
            .and_then(|p| p.with_crashes(crash, volatile))
            .map_err(|e| CliError(e.to_string()))?;
        builder = builder.faults(plan).map_err(|e| CliError(e.to_string()))?;
    }
    let arq_on = args.flags.contains_key("arq-loss");
    if arq_on {
        let arq_loss: f64 = args.number("arq-loss", 0.0)?;
        let timeout: f64 = args.number("arq-timeout", 0.2)?;
        let budget: u32 = args.number("arq-budget", 8)?;
        let backoff: f64 = args.number("arq-backoff", 2.0)?;
        let jitter: f64 = args.number("arq-jitter", 0.25)?;
        let mut arq = ArqConfig::new(arq_loss, timeout, seed ^ 0xA6)
            .and_then(|a| a.with_backoff(backoff, jitter))
            .and_then(|a| a.with_retry_budget(budget))
            .map_err(|e| CliError(e.to_string()))?;
        if args.flags.contains_key("arq-deadline") {
            let deadline: f64 = args.number("arq-deadline", 0.0)?;
            arq = arq
                .with_degrade_deadline(deadline)
                .map_err(|e| CliError(e.to_string()))?;
        }
        builder = builder.arq(arq).map_err(|e| CliError(e.to_string()))?;
    }
    let cells: usize = args.number("cells", 1)?;
    if cells > 1 {
        let mobility: f64 = args.number("mobility", 0.5)?;
        let deadline: f64 = args.number("handoff-deadline", 1.0)?;
        let handoff_loss: f64 = args.number("handoff-loss", 0.0)?;
        let mut topology = TopologyConfig::new(cells, mobility, deadline, seed ^ 0x70)
            .and_then(|t| t.with_loss(handoff_loss))
            .map_err(|e| CliError(e.to_string()))?;
        if args.get_or("broadcast-inv", "off") == "on" {
            topology = topology.with_broadcast_invalidation();
        }
        builder = builder
            .topology(topology)
            .map_err(|e| CliError(e.to_string()))?;
    }
    let mut sim = builder.simulation();
    let mut workload = PoissonWorkload::from_theta(1.0, theta, seed);
    let report = sim.run(&mut workload, RunLimit::Requests(requests));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "policy {spec} on {requests} Poisson requests (θ = {theta}, seed {seed})"
    );
    let _ = writeln!(
        out,
        "  connections: {}   data messages: {}   control messages: {}",
        report.connections, report.data_messages, report.control_messages
    );
    let _ = writeln!(
        out,
        "  cost/request: {:.4} (connection model), {:.4} (message model, ω = {omega})",
        report.cost_per_request(CostModel::Connection),
        report.cost_per_request(CostModel::message(omega)),
    );
    let _ = writeln!(
        out,
        "  replica: {} allocations, {} deallocations; mean read latency {:.4}; {} queued",
        report.allocations, report.deallocations, report.mean_read_latency, report.queued_requests
    );
    if fault_rate > 0.0 {
        let _ = writeln!(
            out,
            "  faults: {} disconnects ({} MC crashes), {} reconciliations",
            report.disconnects, report.mc_crashes, report.reconciliations
        );
        let _ = writeln!(
            out,
            "  recovery bill: {} aborted + {} handshake messages; {} stale deliveries discarded",
            report.aborted_messages, report.reconciliation_messages, report.discarded_deliveries
        );
    }
    if arq_on {
        let _ = writeln!(
            out,
            "  arq: {} retransmissions ({} settled), {} acks billed, {} retry escalations",
            report.retransmissions,
            report.settled_retransmissions,
            report.arq_acks,
            report.retry_escalations
        );
        let opt = |v: Option<f64>| v.map_or_else(|| "n/a".to_owned(), |x| format!("{x:.4}"));
        let _ = writeln!(
            out,
            "  degradation: {} shed, {} degraded reads; MTTR {}; mean staleness {}",
            report.shed_requests(),
            report.degraded_reads,
            opt(report.mean_time_to_recovery()),
            opt(report.mean_staleness())
        );
    }
    if cells > 1 {
        let _ = writeln!(
            out,
            "  mobility: {} migrations, {} handoffs committed, {} aborted, {} legs billed ({} stale-fence discards)",
            report.migrations,
            report.handoffs_committed,
            report.handoffs_aborted,
            report.handoff_messages,
            report.handoff_discards
        );
        let _ = writeln!(
            out,
            "  invalidation: {} messages over {} rounds ({} replicas dropped); {} stale reads served",
            report.invalidation_messages,
            report.invalidation_rounds,
            report.replicas_invalidated,
            report.stale_reads
        );
    }
    let _ = writeln!(
        out,
        "  theory: EXP = {:.4} (connection), {:.4} (message ω = {omega})",
        expected_cost(spec, CostModel::Connection, theta),
        expected_cost(spec, CostModel::message(omega), theta),
    );
    Ok(out)
}

fn parse_f64_list(raw: &str, what: &str) -> Result<Vec<f64>, CliError> {
    raw.split(',')
        .map(|x| {
            x.trim()
                .parse::<f64>()
                .map_err(|_| CliError(format!("invalid {what} {x:?}")))
        })
        .collect()
}

/// `mdr sweep [--preset e6|e17|e18|e19] [--policies ST1,SW3,...] [--thetas ...]
/// [--models connection,message:0.4] [--omegas ...] [--fault-rates ...]
/// [--arq-losses ...] [--replications R] [--requests N] [--seed S]
/// [--latency L] [--oracle on] [--threads T] [--chunk C]
/// [--format table|ledger|json] [--full on]`
///
/// Stdout is deterministic: the same grid prints the same bytes at any
/// `--threads`, which is exactly what the CI determinism job diffs.
/// Timing goes to stderr so it never perturbs the diff.
pub(crate) fn sweep(args: &Args) -> Result<String, CliError> {
    let cfg = RunCfg {
        fast: args.get_or("full", "off") == "off",
    };
    let grid = match args.flags.get("preset") {
        Some(name) => {
            let Some(grid) = preset(name, cfg) else {
                return err(format!(
                    "unknown preset {name:?}; expected e6, e17, e18 or e19"
                ));
            };
            // Presets fix their axes; only the run sizes stay adjustable.
            grid
        }
        None => {
            let seed: u64 = args.number("seed", 0x5EED)?;
            let mut grid = SweepGrid::new(seed);
            if let Some(raw) = args.flags.get("policies") {
                let policies = raw
                    .split(',')
                    .map(|p| parse_policy(p.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                grid = grid
                    .policies(policies)
                    .map_err(|e| CliError(e.to_string()))?;
            }
            if let Some(raw) = args.flags.get("thetas") {
                grid = grid
                    .thetas(parse_f64_list(raw, "θ")?)
                    .map_err(|e| CliError(e.to_string()))?;
            }
            if let Some(raw) = args.flags.get("models") {
                let models = raw
                    .split(',')
                    .map(|m| parse_model(m.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                grid = grid.models(models).map_err(|e| CliError(e.to_string()))?;
            }
            if let Some(raw) = args.flags.get("omegas") {
                grid = grid
                    .omegas(parse_f64_list(raw, "ω")?)
                    .map_err(|e| CliError(e.to_string()))?;
            }
            if let Some(raw) = args.flags.get("fault-rates") {
                // Each rate installs the E17 fault mix; rate 0 is the
                // inert plan, and a no-plan baseline is always first.
                let mut plans = vec![None];
                for rate in parse_f64_list(raw, "fault rate")? {
                    if !(0.0..1.0).contains(&rate) {
                        return err(format!("fault rate must lie in [0, 1), got {rate}"));
                    }
                    plans.push(Some(e17_fault_plan(rate)));
                }
                grid = grid
                    .fault_plans(plans)
                    .map_err(|e| CliError(e.to_string()))?;
            }
            if let Some(raw) = args.flags.get("arq-losses") {
                // Each loss rate installs the E18 transport point
                // (budget 8, backoff 2, base timeout 0.2); a perfect-link
                // baseline is always first.
                let mut configs = vec![None];
                for loss in parse_f64_list(raw, "ARQ loss rate")? {
                    if !(0.0..1.0).contains(&loss) {
                        return err(format!("ARQ loss rate must lie in [0, 1), got {loss}"));
                    }
                    configs.push(Some(e18_arq(loss, 8, 2.0)));
                }
                grid = grid
                    .arq_configs(configs)
                    .map_err(|e| CliError(e.to_string()))?;
            }
            if let Some(latency) = args.flags.get("latency") {
                let latency: f64 = latency
                    .parse()
                    .map_err(|_| CliError(format!("invalid latency {latency:?}")))?;
                grid = grid.latency(latency).map_err(|e| CliError(e.to_string()))?;
            }
            grid = grid
                .oracle(args.get_or("oracle", "off") == "on")
                .map_err(|e| CliError(e.to_string()))?;
            grid
        }
    };
    // Run sizes are adjustable even on presets.
    let grid = match args.flags.get("replications") {
        Some(r) => {
            let r: usize = r
                .parse()
                .map_err(|_| CliError(format!("invalid replication count {r:?}")))?;
            grid.replications(r).map_err(|e| CliError(e.to_string()))?
        }
        None => grid,
    };
    let grid = match args.flags.get("requests") {
        Some(n) => {
            let n: usize = n
                .parse()
                .map_err(|_| CliError(format!("invalid request count {n:?}")))?;
            grid.requests(n).map_err(|e| CliError(e.to_string()))?
        }
        None => grid,
    };

    let options = SweepOptions {
        threads: args.number("threads", 0)?,
        chunk: args.number("chunk", 0)?,
    };
    let started = std::time::Instant::now();
    let report = grid.run(options);
    // Timing is scheduling noise — keep it off the deterministic stdout.
    eprintln!(
        "swept {} runs ({} cells) in {:.2?}",
        grid.runs(),
        grid.cells(),
        started.elapsed()
    );

    let mut out = String::new();
    match args.get_or("format", "table") {
        "table" => {
            let _ = writeln!(
                out,
                "sweep seed {:#x}: {} runs, {} cells",
                report.seed,
                grid.runs(),
                grid.cells()
            );
            let _ = write!(
                out,
                "{}",
                summary_table(
                    "summary (policy × θ × fault × arq × model)",
                    &report.summary
                )
                .render()
            );
            let _ = writeln!(out, "ledger digest: {:#018x}", report.ledger_digest());
        }
        "ledger" => {
            let _ = write!(out, "{}", report.ledger_lines());
            let _ = writeln!(out, "ledger digest: {:#018x}", report.ledger_digest());
        }
        "json" => {
            let summary = serde_json::to_string_pretty(&report.summary)
                .map_err(|e| CliError(format!("summary serialization failed: {e}")))?;
            let _ = writeln!(
                out,
                "{{\n\"seed\": {},\n\"digest\": \"{:#018x}\",\n\"summary\": {summary}\n}}",
                report.seed,
                report.ledger_digest()
            );
        }
        other => {
            return err(format!(
                "unknown format {other:?}; expected table, ledger or json"
            ))
        }
    }
    Ok(out)
}

/// `mdr bench --preset e6|e17|e18|e19 [--baseline BENCH_e17.json]
/// [--gate-pct 10] [--write-baseline on] [--full on] [--requests N]
/// [--replications R] [--threads T] [--chunk C] [--format table|json]`
///
/// Measures a preset sweep with the typed perf API
/// ([`SweepGrid::run_timed`]) and renders a [`BenchSnapshot`]: events
/// processed, wall time, events/sec, and the deterministic ledger digest.
/// With `--write-baseline on` the snapshot is written to the baseline
/// path (default `BENCH_<preset>.json`); otherwise, when the baseline
/// file exists, the measurement is gated against it — a throughput drop
/// beyond `--gate-pct` percent, or *any* ledger-digest drift, is an
/// error (non-zero exit), which is what the CI perf-gate job runs.
pub(crate) fn bench(args: &Args) -> Result<String, CliError> {
    let Some(preset_name) = args.flags.get("preset") else {
        return err("bench requires --preset e6|e17|e18|e19|serve");
    };
    if preset_name == "serve" {
        return bench_serve(args);
    }
    let cfg = RunCfg {
        fast: args.get_or("full", "off") == "off",
    };
    let Some(grid) = preset(preset_name, cfg) else {
        return err(format!(
            "unknown preset {preset_name:?}; expected e6, e17, e18, e19 or serve"
        ));
    };
    let grid = match args.flags.get("replications") {
        Some(r) => {
            let r: usize = r
                .parse()
                .map_err(|_| CliError(format!("invalid replication count {r:?}")))?;
            grid.replications(r).map_err(|e| CliError(e.to_string()))?
        }
        None => grid,
    };
    let grid = match args.flags.get("requests") {
        Some(n) => {
            let n: usize = n
                .parse()
                .map_err(|_| CliError(format!("invalid request count {n:?}")))?;
            grid.requests(n).map_err(|e| CliError(e.to_string()))?
        }
        None => grid,
    };
    let options = SweepOptions {
        threads: args.number("threads", 0)?,
        chunk: args.number("chunk", 0)?,
    };
    let (report, stats) = grid.run_timed(options);
    let snapshot = BenchSnapshot::new(
        preset_name,
        cfg.fast,
        grid.requests_per_run(),
        grid.runs(),
        stats,
        report.ledger_digest(),
    );
    render_bench(args, &snapshot)
}

/// `mdr bench --preset serve [--tenants N] [--requests R] [--seed S]`
///
/// The serving-layer benchmark: a deterministic multi-tenant session
/// (mixed policy roster, per-tenant write fractions fanned across (0, 1))
/// is pushed through [`ServeEngine::handle_line`] — the exact path `mdr
/// serve` runs — and timed end to end, JSON parse to JSON print. The
/// snapshot's events/sec is therefore *decisions per second*, and its
/// digest is the FNV-1a hash of every response byte, so the committed
/// `BENCH_serve.json` pins the wire behaviour bit-for-bit: any drift
/// fails the gate at any speed.
fn bench_serve(args: &Args) -> Result<String, CliError> {
    let fast = args.get_or("full", "off") == "off";
    let tenants: usize = args.number("tenants", 8)?;
    let per_tenant: usize = args.number("requests", if fast { 5_000 } else { 50_000 })?;
    let seed: u64 = args.number("seed", 1994)?;
    if tenants == 0 || per_tenant == 0 {
        return err("--tenants and --requests must be at least 1");
    }
    // Workload synthesis is untimed: the clock covers only the serve path.
    let lines = serve_bench_lines(tenants, per_tenant, seed);
    let watch = Stopwatch::start();
    let report =
        run_serve_bench(&lines, ServeConfig::default()).map_err(|e| CliError(e.to_string()))?;
    let stats = watch.stats(report.decisions);
    let snapshot = BenchSnapshot::new("serve", fast, per_tenant, tenants, stats, report.digest);
    render_bench(args, &snapshot)
}

/// Renders a measured [`BenchSnapshot`] and applies the baseline
/// write/gate protocol shared by the sweep and serve benchmarks: with
/// `--write-baseline on` the snapshot is written to the baseline path
/// (default `BENCH_<preset>.json`); otherwise an existing baseline gates
/// the measurement — throughput drops beyond `--gate-pct`, or *any*
/// digest drift, are errors.
fn render_bench(args: &Args, snapshot: &BenchSnapshot) -> Result<String, CliError> {
    let gate_pct: f64 = match args.flags.get("gate-pct") {
        Some(p) => p
            .parse()
            .map_err(|_| CliError(format!("invalid gate percentage {p:?}")))?,
        None => 10.0,
    };
    if !(0.0..100.0).contains(&gate_pct) {
        return err(format!(
            "gate percentage must lie in [0, 100), got {gate_pct}"
        ));
    }
    let baseline_path = match args.get_or("baseline", "") {
        "" => format!("BENCH_{}.json", snapshot.preset),
        path => path.to_owned(),
    };

    let mut out = String::new();
    match args.get_or("format", "table") {
        "table" => {
            let _ = writeln!(
                out,
                "bench {}/{}: {} runs x {} requests",
                snapshot.preset, snapshot.mode, snapshot.runs, snapshot.requests
            );
            let _ = writeln!(
                out,
                "events {}   wall {:.2} ms   throughput {:.0} events/sec",
                snapshot.events,
                snapshot.wall_nanos as f64 / 1e6,
                snapshot.events_per_sec
            );
            let _ = writeln!(out, "ledger digest: {}", snapshot.ledger_digest);
        }
        "json" => {
            let _ = write!(out, "{}", snapshot.to_json());
        }
        other => {
            return err(format!("unknown format {other:?}; expected table or json"));
        }
    }

    if args.get_or("write-baseline", "off") == "on" {
        std::fs::write(&baseline_path, snapshot.to_json())
            .map_err(|e| CliError(format!("cannot write baseline {baseline_path:?}: {e}")))?;
        let _ = writeln!(out, "baseline written: {baseline_path}");
        return Ok(out);
    }
    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let baseline = BenchSnapshot::parse(&text)
                .map_err(|e| CliError(format!("baseline {baseline_path:?}: {e}")))?;
            let verdict = snapshot.compare(&baseline, gate_pct);
            let _ = writeln!(out, "gate vs {baseline_path}: {}", verdict.render());
            if !verdict.passed() {
                // The rendered measurement still matters on failure:
                // print it before erroring so CI logs show the numbers.
                print!("{out}");
                return err(format!("perf gate failed: {}", verdict.render()));
            }
        }
        Err(_) if args.flags.contains_key("baseline") => {
            return err(format!("cannot read baseline {baseline_path:?}"));
        }
        Err(_) => {
            let _ = writeln!(
                out,
                "no baseline at {baseline_path} (write one with --write-baseline on)"
            );
        }
    }
    Ok(out)
}

/// Builds the [`ServeConfig`] for `mdr serve` from its flags.
fn serve_config(args: &Args) -> Result<ServeConfig, CliError> {
    let mut config = ServeConfig::default();
    config.max_tenants = args.number("max-tenants", config.max_tenants)?;
    if config.max_tenants == 0 {
        return err("--max-tenants must be at least 1");
    }
    if let Some(budget) = args.flags.get("budget") {
        let budget: u64 = budget
            .parse()
            .map_err(|_| CliError(format!("invalid decision budget {budget:?}")))?;
        config.decision_budget = Some(budget);
    }
    if let Some(policy) = args.flags.get("policy") {
        config.default_policy = parse_policy(policy)?;
    }
    if let Some(model) = args.flags.get("model") {
        config.default_model = parse_model(model)?;
    }
    config.adaptive = args.get_or("adaptive", "off") == "on";
    Ok(config)
}

/// `mdr serve [--max-tenants N] [--policy P] [--model M] [--budget N]
/// [--adaptive on] [--data-dir DIR] [--fsync always|interval[:N]|never]
/// [--checkpoint-every N]`
///
/// The long-running decision daemon: newline-JSON requests on stdin, one
/// JSON response per line on stdout, no async runtime — just a read loop
/// over a [`ServeEngine`]. Every line gets exactly one response (malformed
/// input becomes a typed error, admission refusals a typed shed); the
/// loop ends at EOF or after a `{"op":"shutdown"}` request. `--policy`
/// and `--model` set the defaults for tenants that do not name their own;
/// the built-in default is the competitive-safe T1(2) under the
/// connection model.
///
/// With `--data-dir`, the daemon is crash-safe: every acknowledged state
/// change is journaled to a per-tenant write-ahead log before the
/// response is produced, checkpoints compact the journals, and a restart
/// on the same directory recovers every tenant (replaying the journal
/// tail, truncating torn records, quarantining — never crashing on —
/// unrecoverable tenants). Shutdown and end-of-input both flush a final
/// checkpoint. The recovery summary goes to stderr; stdout carries only
/// the wire protocol.
pub(crate) fn serve(args: &Args) -> Result<String, CliError> {
    let config = serve_config(args)?;
    match args.flags.get("data-dir") {
        Some(dir) => serve_durable(args, config, &dir.clone()),
        None => {
            for flag in ["fsync", "checkpoint-every"] {
                if args.flags.contains_key(flag) {
                    return err(format!("--{flag} requires --data-dir"));
                }
            }
            let mut engine = ServeEngine::new(config).map_err(|e| CliError(e.to_string()))?;
            serve_loop(&mut engine)
        }
    }
}

/// What the serve read loop needs from a daemon backend: the in-memory
/// engine and the durable wrapper both qualify.
trait LineServer {
    fn handle_line(&mut self, line: &str) -> String;
    fn is_done(&self) -> bool;
    /// Runs when stdin ends without a `shutdown` op.
    fn at_eof(&mut self) {}
}

impl LineServer for ServeEngine {
    fn handle_line(&mut self, line: &str) -> String {
        ServeEngine::handle_line(self, line)
    }
    fn is_done(&self) -> bool {
        ServeEngine::is_done(self)
    }
}

impl LineServer for DurableServe {
    fn handle_line(&mut self, line: &str) -> String {
        DurableServe::handle_line(self, line)
    }
    fn is_done(&self) -> bool {
        DurableServe::is_done(self)
    }
    fn at_eof(&mut self) {
        // End-of-input flushes like a shutdown: final checkpoint,
        // compacted journal, everything fsynced.
        self.finalize();
    }
}

/// The durable variant of the serve loop: recover, report to stderr,
/// then serve with the journal in the write path.
fn serve_durable(args: &Args, config: ServeConfig, dir: &str) -> Result<String, CliError> {
    let mut journal = JournalConfig::new(dir);
    if let Some(fsync) = args.flags.get("fsync") {
        journal.fsync = parse_fsync(fsync)?;
    }
    journal.checkpoint_every = args.number("checkpoint-every", journal.checkpoint_every)?;
    let watch = Stopwatch::start();
    let (mut serve, report) =
        DurableServe::open(config, journal).map_err(|e| CliError(e.to_string()))?;
    let recovery = watch.stats(report.tenants.len() as u64);
    let stats = serve.stats();
    eprintln!(
        "recovery: {} tenant(s) recovered, {} record(s) replayed, {} byte(s) truncated, \
         {} quarantined in {:.1} ms",
        stats.recovered_tenants,
        stats.replayed_records,
        stats.truncated_bytes,
        stats.quarantined_tenants,
        recovery.wall_nanos as f64 / 1e6,
    );
    for (name, outcome) in &report.tenants {
        if let mdr_sim::TenantRecovery::Quarantined { error } = outcome {
            eprintln!("quarantined tenant {name:?}: {error}");
        }
    }
    for dir_name in &report.skipped_dirs {
        eprintln!("skipped stray directory {dir_name:?} under tenants/");
    }
    serve_loop(&mut serve)
}

/// The shared stdin→stdout read loop over either serve backend.
fn serve_loop(server: &mut impl LineServer) -> Result<String, CliError> {
    use std::io::{BufRead as _, Write as _};
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut shut_down = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| CliError(format!("cannot read stdin: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = server.handle_line(&line);
        writeln!(stdout, "{response}")
            .and_then(|()| stdout.flush())
            .map_err(|e| CliError(format!("cannot write stdout: {e}")))?;
        if server.is_done() {
            shut_down = true;
            break;
        }
    }
    if !shut_down {
        server.at_eof();
    }
    // Responses were streamed in-loop; nothing is left to print.
    Ok(String::new())
}

/// `mdr worst-case --policy SW5 --model message:0.5 [--max-len 13]
/// [--cycles 300]`
pub(crate) fn worst_case(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let model = parse_model(args.get_or("model", "connection"))?;
    let max_len: usize = args.number("max-len", 13)?;
    if !(1..=20).contains(&max_len) {
        return err("--max-len must lie in 1..=20");
    }
    let cycles: usize = args.number("cycles", 300)?;
    let mut out = String::new();
    let _ = writeln!(out, "policy: {spec}   model: {model}");
    match competitive_factor(spec, model) {
        Some(claimed) => {
            let _ = writeln!(out, "claimed factor: {claimed:.4}");
            let schedule = generators::adversarial_for(spec, cycles);
            let warmup = Schedule::new();
            let r = cycle_ratio(spec, &warmup, &schedule, 1, model);
            let _ = writeln!(
                out,
                "ratio on the adversarial schedule ({} requests): {}",
                schedule.len(),
                r.ratio.map_or_else(|| "∞".into(), |x| format!("{x:.4}"))
            );
        }
        None => {
            let schedule = generators::adversarial_for(spec, 1_000);
            let r = measure(spec, &schedule, model);
            let _ = writeln!(
                out,
                "NOT competitive: on {} the policy pays {:.1} while OPT pays {:.1}",
                if matches!(spec, PolicySpec::St1) {
                    "r^1000"
                } else {
                    "w^1000"
                },
                r.policy_cost,
                r.opt_cost
            );
        }
    }
    let search = exhaustive_search(spec, model, max_len);
    let _ = writeln!(
        out,
        "exhaustive worst over all {} schedules (length ≤ {max_len}): ratio {} on {}",
        search.examined,
        search
            .worst
            .ratio
            .map_or_else(|| "∞".into(), |x| format!("{x:.4}")),
        search.worst_schedule
    );
    Ok(out)
}

/// `mdr trace --schedule rrwwr --policy SW3 [--model connection]`
pub(crate) fn trace(args: &Args) -> Result<String, CliError> {
    let spec = parse_policy(args.required("policy")?)?;
    let model = parse_model(args.get_or("model", "connection"))?;
    let schedule: Schedule = args
        .required("schedule")?
        .parse()
        .map_err(|e| CliError(format!("bad schedule: {e}")))?;
    let mut policy = spec.build();
    let steps = trace_policy(policy.as_mut(), &schedule, model);
    let mut out = String::new();
    let _ = writeln!(out, "{spec} on {schedule} under {model}:");
    let _ = writeln!(
        out,
        "{:>4}  {:>3}  {:<28} {:>8}  copy",
        "#", "req", "action", "cost"
    );
    let mut total = 0.0;
    for s in &steps {
        total += s.cost;
        let _ = writeln!(
            out,
            "{:>4}  {:>3}  {:<28} {:>8.3}  {}",
            s.index,
            s.request.to_string(),
            s.action.to_string(),
            s.cost,
            if s.copy_after { "yes" } else { "no" }
        );
    }
    let _ = writeln!(out, "total cost: {total:.3}");
    Ok(out)
}

/// `mdr multi --profile profile.json` — the JSON is a map from class names
/// like `"r{0,1}"` / `"w{2}"` to rates.
pub(crate) fn multi(args: &Args) -> Result<String, CliError> {
    let path = args.required("profile")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    let raw: std::collections::BTreeMap<String, f64> =
        serde_json::from_str(&text).map_err(|e| CliError(format!("invalid JSON profile: {e}")))?;
    let mut entries = Vec::new();
    let mut n_objects = 0usize;
    for (class, rate) in &raw {
        let (kind, objs) = parse_class(class)?;
        n_objects = n_objects.max(objs.iter().copied().max().map_or(0, |m| m + 1));
        let set = mdr_multi::ObjectSet::from_objects(&objs);
        let op = match kind {
            'r' => mdr_multi::Operation::read(set),
            _ => mdr_multi::Operation::write(set),
        };
        entries.push((op, *rate));
    }
    if n_objects == 0 {
        return err("profile names no objects");
    }
    let profile = mdr_multi::OperationProfile::new(n_objects, entries);
    let (best, cost) = profile.optimal_allocation();
    let mut out = String::new();
    let _ = writeln!(out, "objects: {n_objects}   classes: {}", raw.len());
    let _ = writeln!(out, "optimal static allocation: replicate {}", best.0);
    let _ = writeln!(out, "expected cost per operation: {cost:.6}");
    let _ = writeln!(
        out,
        "for comparison: replicate nothing {:.6}, replicate all {:.6}",
        profile.expected_cost(mdr_multi::Allocation::EMPTY),
        profile.expected_cost(mdr_multi::Allocation::full(n_objects)),
    );
    Ok(out)
}

fn parse_class(s: &str) -> Result<(char, Vec<usize>), CliError> {
    let mut chars = s.chars();
    let kind = chars.next().unwrap_or(' ');
    if kind != 'r' && kind != 'w' {
        return err(format!("class {s:?} must start with 'r' or 'w'"));
    }
    let rest: String = chars.collect();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| CliError(format!("class {s:?} must look like r{{0,1}}")))?;
    let objs = inner
        .split(',')
        .map(|x| {
            x.trim()
                .parse::<usize>()
                .map_err(|_| CliError(format!("bad object index {x:?} in {s:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((kind, objs))
}

fn name(w: Winner) -> &'static str {
    match w {
        Winner::St1 => "ST1",
        Winner::St2 => "ST2",
        Winner::Sw1 => "SW1",
    }
}

/// Dispatches a parsed command line.
pub(crate) fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "analyze" => analyze(args),
        "recommend" => recommend(args),
        "simulate" => simulate(args),
        "sweep" => sweep(args),
        "bench" => bench(args),
        "serve" => serve(args),
        "worst-case" => worst_case(args),
        "trace" => trace(args),
        "multi" => multi(args),
        other => err(format!("unknown subcommand {other:?}; see `mdr help`")),
    }
}

/// The help text.
pub(crate) fn help() -> String {
    "mdr — data replication for mobile computers (SIGMOD 1994)

subcommands:
  analyze    --policy <P> [--model M] [--theta T]      closed-form costs & competitiveness
  recommend  [--theta T] [--omega W] [--slack S]       which policy to run (Figure 1 / §9)
  simulate   --policy <P> [--theta T] [--requests N] [--seed S] [--omega W] [--latency L]
             [--faults RATE] [--outage T] [--crash-prob P] [--volatile-prob P]
             (RATE > 0 injects MC disconnections/crashes + reconnection recovery)
             [--arq-loss P] [--arq-timeout T] [--arq-budget N] [--arq-backoff F]
             [--arq-jitter J] [--arq-deadline D]
             (--arq-loss enables the timed ARQ transport: timeout/backoff
              retransmission, retry budgets, graceful degradation)
             [--cells N] [--mobility RATE] [--handoff-deadline D] [--handoff-loss P]
             [--broadcast-inv on]
             (--cells > 1 enables the multi-cell topology: seed-driven migration,
              epoch-fenced three-way handoff, stale-replica invalidation)
  sweep      [--preset e6|e17|e18|e19] [--policies P1,P2] [--thetas ...] [--models ...]
             [--omegas ...] [--fault-rates ...] [--arq-losses ...] [--replications R]
             [--requests N] [--seed S] [--latency L] [--oracle on] [--threads T]
             [--chunk C] [--format table|ledger|json] [--full on]
             (deterministic parallel grid; stdout is byte-identical at any --threads)
  bench      --preset e6|e17|e18|e19|serve [--baseline BENCH_e17.json] [--gate-pct 10]
             [--write-baseline on] [--full on] [--requests N] [--replications R]
             [--threads T] [--chunk C] [--format table|json]
             (typed perf measurement: events, wall time, events/sec, ledger digest;
              gates against a committed BENCH_*.json — digest drift always fails.
              --preset serve times the decision daemon: decisions/sec through the
              full JSON wire path, with [--tenants N] [--requests R] [--seed S])
  serve      [--max-tenants N] [--policy P] [--model M] [--budget N] [--adaptive on]
             [--data-dir DIR] [--fsync always|interval[:N]|never] [--checkpoint-every N]
             (long-running decision daemon: newline-JSON on stdin/stdout, one
              DecisionCore per tenant; open/decide/stats/snapshot/restore/close;
              --data-dir makes it crash-safe: write-ahead journal + checkpoints,
              recovery with quarantine on restart; see docs/serve.md)
  worst-case --policy <P> [--model M] [--max-len L] [--cycles C]
  trace      --policy <P> --schedule rrwwr [--model M] per-request execution trace
  multi      --profile profile.json                    §7.2 optimal multi-object allocation

policies: ST1, ST2, SW<k> (odd k), T1:<m>, T2:<m>
models:   connection | message:<omega>   (ω ∈ [0,1])
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = argv.iter().map(ToString::to_string).collect();
        dispatch(&Args::parse(&v).unwrap())
    }

    #[test]
    fn analyze_reports_formulas() {
        let out = run(&["analyze", "--policy", "SW9", "--theta", "0.3"]).unwrap();
        assert!(out.contains("expected cost"));
        assert!(out.contains("10.0000-competitive"));
        let out = run(&["analyze", "--policy", "ST1"]).unwrap();
        assert!(out.contains("NOT competitive"));
    }

    #[test]
    fn recommend_fixed_theta_uses_figure_1() {
        let out = run(&["recommend", "--theta", "0.6", "--omega", "0.4"]).unwrap();
        assert!(out.contains("run SW1"), "{out}");
        let out = run(&["recommend", "--theta", "0.9", "--omega", "0.4"]).unwrap();
        assert!(out.contains("run ST1"), "{out}");
    }

    #[test]
    fn recommend_drifting_uses_section_9() {
        let out = run(&["recommend", "--slack", "0.10"]).unwrap();
        assert!(out.contains("SW9"), "{out}");
        let out = run(&["recommend", "--omega", "0.8"]).unwrap();
        assert!(out.contains("k ≥ 7"), "{out}");
        let out = run(&["recommend", "--omega", "0.3"]).unwrap();
        assert!(out.contains("run SW1"), "{out}");
    }

    #[test]
    fn simulate_runs_and_reports() {
        let out = run(&[
            "simulate",
            "--policy",
            "SW3",
            "--theta",
            "0.4",
            "--requests",
            "2000",
            "--seed",
            "1",
        ])
        .unwrap();
        assert!(out.contains("cost/request"));
        assert!(out.contains("theory"));
    }

    #[test]
    fn simulate_with_faults_reports_recovery() {
        let argv = [
            "simulate",
            "--policy",
            "SW3",
            "--theta",
            "0.4",
            "--requests",
            "3000",
            "--seed",
            "7",
            "--latency",
            "0.05",
            "--faults",
            "0.05",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("reconciliations"), "{out}");
        assert!(out.contains("recovery bill"), "{out}");
        // Identical command lines replay identical reports (fault
        // determinism through the CLI surface).
        assert_eq!(out, run(&argv).unwrap());
        // An invalid fault mix is a friendly error, not a panic.
        assert!(run(&[
            "simulate",
            "--policy",
            "SW3",
            "--faults",
            "0.05",
            "--crash-prob",
            "1.5",
        ])
        .is_err());
    }

    #[test]
    fn simulate_with_arq_reports_transport() {
        let argv = [
            "simulate",
            "--policy",
            "SW3",
            "--theta",
            "0.4",
            "--requests",
            "3000",
            "--seed",
            "7",
            "--latency",
            "0.05",
            "--arq-loss",
            "0.2",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("arq:"), "{out}");
        assert!(out.contains("retry escalations"), "{out}");
        assert!(out.contains("degradation:"), "{out}");
        // Identical command lines replay identical reports — the
        // transport's timers and jitter are seed-derived, not clocked.
        assert_eq!(out, run(&argv).unwrap());
        // The transport composes with the fault layer.
        let mut faulted: Vec<&str> = argv.to_vec();
        faulted.extend(["--faults", "0.05"]);
        let both = run(&faulted).unwrap();
        assert!(both.contains("faults:") && both.contains("arq:"), "{both}");
        // Invalid transport knobs are friendly errors, not panics.
        assert!(run(&["simulate", "--policy", "SW3", "--arq-loss", "1.5"]).is_err());
        assert!(run(&[
            "simulate",
            "--policy",
            "SW3",
            "--arq-loss",
            "0.2",
            "--arq-backoff",
            "0.5",
        ])
        .is_err());
    }

    #[test]
    fn simulate_with_topology_reports_mobility() {
        let argv = [
            "simulate",
            "--policy",
            "SW3",
            "--theta",
            "0.4",
            "--requests",
            "3000",
            "--seed",
            "7",
            "--latency",
            "0.05",
            "--cells",
            "4",
            "--mobility",
            "0.6",
            "--handoff-loss",
            "0.2",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("mobility:"), "{out}");
        assert!(out.contains("invalidation:"), "{out}");
        // Identical command lines replay identical reports — migrations
        // and handoff legs are seed-derived, not clocked.
        assert_eq!(out, run(&argv).unwrap());
        // The topology composes with faults and the ARQ transport.
        let mut loaded: Vec<&str> = argv.to_vec();
        loaded.extend([
            "--faults",
            "0.05",
            "--arq-loss",
            "0.2",
            "--broadcast-inv",
            "on",
        ]);
        let all = run(&loaded).unwrap();
        assert!(
            all.contains("faults:") && all.contains("arq:") && all.contains("mobility:"),
            "{all}"
        );
        // Invalid topology knobs are friendly errors, not panics.
        assert!(run(&[
            "simulate",
            "--policy",
            "SW3",
            "--cells",
            "4",
            "--mobility",
            "-0.5"
        ])
        .is_err());
        assert!(run(&[
            "simulate",
            "--policy",
            "SW3",
            "--cells",
            "4",
            "--handoff-loss",
            "1.5",
        ])
        .is_err());
    }

    #[test]
    fn sweep_stdout_is_thread_count_invariant() {
        let base = [
            "sweep",
            "--policies",
            "ST1,SW3",
            "--thetas",
            "0.3,0.7",
            "--omegas",
            "0.5",
            "--requests",
            "800",
            "--seed",
            "9",
        ];
        let run_with = |threads: &str, format: &str| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--threads", threads, "--format", format]);
            run(&argv).unwrap()
        };
        for format in ["table", "ledger", "json"] {
            let serial = run_with("1", format);
            let parallel = run_with("4", format);
            assert_eq!(serial, parallel, "--format {format}");
        }
        assert!(run_with("1", "table").contains("ledger digest"));
        assert!(run_with("1", "ledger").contains("theta=0.3"));
        assert!(run_with("1", "json").contains("\"summary\""));
    }

    #[test]
    fn sweep_presets_and_errors() {
        let out = run(&[
            "sweep",
            "--preset",
            "e6",
            "--requests",
            "300",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("SW7"), "{out}");
        let faulted = run(&[
            "sweep",
            "--policies",
            "SW3",
            "--fault-rates",
            "0.1",
            "--latency",
            "0.05",
            "--requests",
            "1500",
        ])
        .unwrap();
        assert!(faulted.contains("fault"), "{faulted}");
        assert!(run(&["sweep", "--preset", "bogus"]).is_err());
        assert!(run(&["sweep", "--thetas", "1.5"]).is_err());
        assert!(run(&["sweep", "--policies", "SW4"]).is_err());
        assert!(run(&["sweep", "--format", "xml"]).is_err());
        assert!(run(&["sweep", "--fault-rates", "2.0"]).is_err());
        assert!(run(&["sweep", "--arq-losses", "1.5"]).is_err());
    }

    #[test]
    fn sweep_arq_axis_is_thread_count_invariant() {
        let base = [
            "sweep",
            "--policies",
            "SW3",
            "--thetas",
            "0.4",
            "--arq-losses",
            "0.2",
            "--latency",
            "0.05",
            "--requests",
            "1000",
            "--seed",
            "3",
        ];
        let run_with = |threads: &str| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--threads", threads, "--format", "ledger"]);
            run(&argv).unwrap()
        };
        let serial = run_with("1");
        assert_eq!(serial, run_with("4"));
        assert!(serial.contains("arq=1"), "{serial}");
        // The e18 preset resolves and carries the ARQ axis too.
        let preset = run(&[
            "sweep",
            "--preset",
            "e18",
            "--requests",
            "400",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(preset.contains("arq"), "{preset}");
    }

    #[test]
    fn worst_case_reports_ratios() {
        let out = run(&[
            "worst-case",
            "--policy",
            "SW3",
            "--max-len",
            "10",
            "--cycles",
            "50",
        ])
        .unwrap();
        assert!(out.contains("claimed factor: 4.0000"), "{out}");
        assert!(out.contains("exhaustive worst"));
        let out = run(&["worst-case", "--policy", "ST2", "--max-len", "8"]).unwrap();
        assert!(out.contains("NOT competitive"), "{out}");
    }

    #[test]
    fn trace_prints_steps() {
        let out = run(&["trace", "--policy", "SW3", "--schedule", "rrw"]).unwrap();
        assert!(out.contains("remote-read+allocate"), "{out}");
        assert!(out.contains("total cost"));
    }

    #[test]
    fn multi_reads_json_profile() {
        let dir = std::env::temp_dir().join("mdr-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        std::fs::write(
            &path,
            r#"{"r{0}": 8.0, "w{0}": 1.0, "r{1}": 1.0, "w{1}": 8.0, "r{0,1}": 1.0}"#,
        )
        .unwrap();
        let out = run(&["multi", "--profile", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("optimal static allocation"), "{out}");
        assert!(
            out.contains("{0}"),
            "replicate the read-heavy object: {out}"
        );
    }

    #[test]
    fn bad_inputs_give_friendly_errors() {
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["analyze"]).is_err(), "missing --policy");
        assert!(run(&["analyze", "--policy", "SW4"]).is_err(), "even k");
        assert!(run(&["trace", "--policy", "SW3", "--schedule", "rxw"]).is_err());
        assert!(run(&["worst-case", "--policy", "SW3", "--max-len", "25"]).is_err());
    }

    #[test]
    fn class_parser() {
        assert_eq!(parse_class("r{0,2}").unwrap(), ('r', vec![0, 2]));
        assert_eq!(parse_class("w{1}").unwrap(), ('w', vec![1]));
        assert!(parse_class("x{0}").is_err());
        assert!(parse_class("r0").is_err());
        assert!(parse_class("r{a}").is_err());
    }
}
