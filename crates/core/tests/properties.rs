//! Property-based tests of the core invariants.

use mdr_core::{
    run_spec, Action, AllocationPolicy, CostModel, PolicySpec, Request, RequestWindow, Schedule,
    SlidingWindow,
};
use proptest::prelude::*;

/// Strategy: an arbitrary request.
fn arb_request() -> impl Strategy<Value = Request> {
    prop::bool::ANY.prop_map(Request::from_bit)
}

/// Strategy: an arbitrary schedule up to `max_len` requests.
fn arb_schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(arb_request(), 0..=max_len).prop_map(Schedule::from_requests)
}

/// Strategy: an odd window size in `1..=31`.
fn arb_odd_k() -> impl Strategy<Value = usize> {
    (0usize..16).prop_map(|n| 2 * n + 1)
}

/// Strategy: every policy family with small parameters.
fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::St1),
        Just(PolicySpec::St2),
        arb_odd_k().prop_map(|k| PolicySpec::SlidingWindow { k }),
        (1usize..12).prop_map(|m| PolicySpec::T1 { m }),
        (1usize..12).prop_map(|m| PolicySpec::T2 { m }),
    ]
}

proptest! {
    /// The SWk replica state is always exactly the window majority.
    #[test]
    fn swk_copy_iff_majority_reads(k in arb_odd_k(), s in arb_schedule(200)) {
        let mut sw = SlidingWindow::new(k);
        for r in &s {
            sw.on_request(r);
            prop_assert_eq!(sw.has_copy(), sw.window().majority_reads());
        }
    }

    /// Allocations happen only on reads; deallocations only on writes
    /// (the §4 observation, for every policy family).
    #[test]
    fn transitions_have_the_right_parity(spec in arb_spec(), s in arb_schedule(200)) {
        let mut p = spec.build();
        for r in &s {
            let a = p.on_request(r);
            if a.allocates() { prop_assert!(r.is_read()); }
            if a.deallocates() { prop_assert!(r.is_write()); }
        }
    }

    /// The action kind always matches the request kind.
    #[test]
    fn actions_match_request_kind(spec in arb_spec(), s in arb_schedule(150)) {
        let mut p = spec.build();
        for r in &s {
            let a = p.on_request(r);
            prop_assert_eq!(a.is_read_action(), r.is_read());
        }
    }

    /// `has_copy` flips exactly when an allocate/deallocate action occurs.
    #[test]
    fn copy_state_changes_only_with_transition_actions(spec in arb_spec(), s in arb_schedule(150)) {
        let mut p = spec.build();
        let mut prev = p.has_copy();
        for r in &s {
            let a = p.on_request(r);
            let now = p.has_copy();
            match (prev, now) {
                (false, true) => prop_assert!(a.allocates(), "{a}"),
                (true, false) => prop_assert!(a.deallocates(), "{a}"),
                _ => prop_assert!(!a.allocates() && !a.deallocates(), "{a}"),
            }
            prev = now;
        }
    }

    /// Per-request connection cost is 0 or 1 — the premise of the paper's
    /// footnote that all algorithms have the same traditional worst case.
    #[test]
    fn connection_cost_is_zero_or_one(spec in arb_spec(), s in arb_schedule(150)) {
        let mut p = spec.build();
        for r in &s {
            let c = CostModel::Connection.price(p.on_request(r));
            prop_assert!(c == 0.0 || c == 1.0);
        }
    }

    /// Per-request message cost is one of {0, ω, 1, 1 + ω}.
    #[test]
    fn message_cost_takes_only_legal_values(
        spec in arb_spec(),
        s in arb_schedule(150),
        omega in 0.0f64..=1.0,
    ) {
        let mut p = spec.build();
        let model = CostModel::message(omega);
        for r in &s {
            let c = model.price(p.on_request(r));
            let legal = [0.0, omega, 1.0, 1.0 + omega];
            prop_assert!(legal.iter().any(|&l| (c - l).abs() < 1e-12), "cost {c}");
        }
    }

    /// Reset really restores the initial state: a second run over the same
    /// schedule reproduces the same total cost.
    #[test]
    fn reset_makes_runs_reproducible(spec in arb_spec(), s in arb_schedule(120)) {
        let mut p = spec.build();
        let model = CostModel::message(0.5);
        let c1: f64 = s.iter().map(|r| model.price(p.on_request(r))).sum();
        p.reset();
        let c2: f64 = s.iter().map(|r| model.price(p.on_request(r))).sum();
        prop_assert_eq!(c1, c2);
    }

    /// Cost is additive over schedule concatenation (policies are online:
    /// the past only matters through the state).
    #[test]
    fn cost_is_additive_over_concatenation(
        spec in arb_spec(),
        a in arb_schedule(80),
        b in arb_schedule(80),
    ) {
        let model = CostModel::message(0.25);
        let whole = run_spec(spec, &a.concat(&b), model).total_cost;
        let mut p = spec.build();
        let part1: f64 = a.iter().map(|r| model.price(p.on_request(r))).sum();
        let part2: f64 = b.iter().map(|r| model.price(p.on_request(r))).sum();
        prop_assert!((whole - (part1 + part2)).abs() < 1e-9);
    }

    /// SW1 never sends a data message on a write; SWk (k > 1) never uses the
    /// delete-request-only write.
    #[test]
    fn sw1_optimization_boundary(k in arb_odd_k(), s in arb_schedule(150)) {
        let mut sw = SlidingWindow::new(k);
        for r in &s {
            let a = sw.on_request(r);
            let is_propagated = matches!(a, Action::PropagatedWrite { .. });
            if k == 1 {
                prop_assert!(!is_propagated);
            } else {
                prop_assert!(!matches!(a, Action::DeleteRequestWrite));
            }
        }
    }

    /// The window ring buffer behaves exactly like a naive VecDeque model.
    #[test]
    fn window_matches_reference_model(k in arb_odd_k(), s in arb_schedule(200)) {
        let mut w = RequestWindow::filled(k, Request::Write);
        let mut model: Vec<Request> = vec![Request::Write; k];
        for r in &s {
            let dropped = w.push(r);
            prop_assert_eq!(dropped, model[0]);
            model.remove(0);
            model.push(r);
            prop_assert_eq!(w.to_requests(), model.clone());
            prop_assert_eq!(w.writes(), model.iter().filter(|x| x.is_write()).count());
        }
    }

    /// Schedule textual round-trip.
    #[test]
    fn schedule_roundtrip(s in arb_schedule(300)) {
        let parsed: Schedule = s.to_string().parse().unwrap();
        prop_assert_eq!(parsed, s);
    }

    /// ST1's total message cost is exactly reads · (1 + ω) and ST2's is
    /// exactly writes · 1 — Eq. (7) at the schedule level.
    #[test]
    fn static_costs_in_closed_form(s in arb_schedule(300), omega in 0.0f64..=1.0) {
        let model = CostModel::message(omega);
        let st1 = run_spec(PolicySpec::St1, &s, model).total_cost;
        let st2 = run_spec(PolicySpec::St2, &s, model).total_cost;
        prop_assert!((st1 - s.reads() as f64 * (1.0 + omega)).abs() < 1e-9);
        prop_assert!((st2 - s.writes() as f64).abs() < 1e-9);
    }

    /// Action tallies partition the schedule for every policy.
    #[test]
    fn counts_partition_schedule(spec in arb_spec(), s in arb_schedule(200)) {
        let out = run_spec(spec, &s, CostModel::Connection);
        prop_assert_eq!(out.counts.reads() as usize, s.reads());
        prop_assert_eq!(out.counts.writes() as usize, s.writes());
        // Transition counts can differ by at most one (alternating states).
        let allocs = out.counts.allocations() as i64;
        let deallocs = out.counts.deallocations() as i64;
        prop_assert!((allocs - deallocs).abs() <= 1);
    }

    /// Restarting SWk from a mid-run window snapshot continues identically —
    /// the handoff property that makes the distributed protocol work.
    #[test]
    fn swk_resume_from_window_snapshot(
        k in arb_odd_k(),
        a in arb_schedule(100),
        b in arb_schedule(100),
    ) {
        let model = CostModel::message(0.5);
        // Run a, snapshot the window, then run b on the same instance.
        let mut full = SlidingWindow::new(k);
        for r in &a { full.on_request(r); }
        let snapshot = full.window().clone();
        let cb_full: f64 = b.iter().map(|r| model.price(full.on_request(r))).sum();
        // Resume a fresh instance from the snapshot alone.
        let mut resumed = SlidingWindow::with_window(snapshot);
        let cb_resumed: f64 = b.iter().map(|r| model.price(resumed.on_request(r))).sum();
        prop_assert!((cb_full - cb_resumed).abs() < 1e-9);
    }
}
