//! The k-bit request window (§4).
//!
//! The paper specifies the window implementation precisely: "The window is
//! tracked as a sequence of k bits (e.g. 0 represents a read and 1
//! represents a write). At the receipt of any relevant request, the computer
//! in charge drops the last bit in the sequence and adds a bit representing
//! the current operation." This module implements exactly that — a
//! fixed-capacity ring of bits with an incrementally maintained write count,
//! O(1) per request and allocation-free after construction.
//!
//! The window is also the object handed between the MC and the SC when
//! replica ownership migrates (piggybacked on the data response or the
//! delete-request), so it supports cheap snapshot/restore.

use crate::request::Request;
use std::fmt;

/// Bit words kept inline (no heap) — covers every window size the §4
/// policies use in practice (`k ≤ 128`); larger windows spill to a heap
/// allocation. Keeping the common case inline makes cloning a window —
/// and with it cloning node state for checkpoints, and shipping windows
/// inside wire messages — a flat memcpy on the simulator's hot path.
const INLINE_WORDS: usize = 2;

/// Backing storage for the window bits: inline words for `k ≤ 128`,
/// heap-spilled words beyond. The variant is a function of `k` alone, so
/// derived equality/hashing never compares across variants for windows
/// of the same size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Bits {
    /// `k ≤ 128`: words beyond `k.div_ceil(64)` stay zero.
    Inline([u64; INLINE_WORDS]),
    /// `k > 128`: exactly `k.div_ceil(64)` words.
    Spill(Vec<u64>),
}

impl Bits {
    /// Zeroed storage for `words` 64-bit words.
    fn zeroed(words: usize) -> Self {
        if words <= INLINE_WORDS {
            Bits::Inline([0; INLINE_WORDS])
        } else {
            Bits::Spill(vec![0; words])
        }
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match self {
            Bits::Inline(a) => a,
            Bits::Spill(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match self {
            Bits::Inline(a) => a,
            Bits::Spill(v) => v,
        }
    }
}

/// A sliding window over the last `k` relevant requests, `k` odd (§4).
///
/// With `k` odd there is always a strict majority, and the paper's
/// allocation rule reduces to: the MC should hold a replica **iff** reads
/// form the majority of the window.
///
/// ```
/// use mdr_core::{Request, RequestWindow};
///
/// let mut w = RequestWindow::filled(3, Request::Write);
/// assert!(!w.majority_reads());
/// w.push(Request::Read);
/// w.push(Request::Read);
/// assert!(w.majority_reads()); // window is now [w, r, r]
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestWindow {
    /// Bit i of word `i / 64` holds the request at logical position
    /// `(head + i) % k`... — see `at()` for the mapping. `true` = write.
    bits: Bits,
    /// Window size (odd).
    k: usize,
    /// Index of the slot holding the *oldest* request.
    head: usize,
    /// Number of writes currently in the window.
    writes: usize,
}

impl RequestWindow {
    /// Creates a window of size `k` filled with `fill`.
    ///
    /// The paper does not prescribe the initial window; a window full of
    /// writes models "no replica initially" (the natural cold start where
    /// only the SC holds the item) and a window full of reads models "replica
    /// initially present".
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or even ("for ease of analysis we assume that
    /// k, the window size, is odd", §4).
    pub fn filled(k: usize, fill: Request) -> Self {
        assert!(k >= 1, "window size k must be at least 1");
        assert!(k % 2 == 1, "window size k must be odd (paper §4), got {k}");
        let words = k.div_ceil(64);
        let mut bits = Bits::zeroed(words);
        if fill.is_write() {
            for (i, word) in bits.words_mut()[..words].iter_mut().enumerate() {
                let remaining = k - (i * 64).min(k);
                *word = if remaining >= 64 {
                    u64::MAX
                } else {
                    (1u64 << remaining) - 1
                };
            }
        }
        RequestWindow {
            bits,
            k,
            head: 0,
            writes: if fill.is_write() { k } else { 0 },
        }
    }

    /// Builds a window from the last `k` requests, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` is zero or even (§4 assumes odd `k`).
    pub fn from_requests(requests: &[Request]) -> Self {
        let mut w = RequestWindow::filled(requests.len(), Request::Read);
        // Pushing each request in order leaves the slice contents in the
        // window with the same oldest-first order.
        for &r in requests {
            w.push(r);
        }
        w
    }

    /// The window size `k` (§4, odd).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of write bits currently in the §4 window.
    #[inline]
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// Number of read bits currently in the §4 window.
    #[inline]
    pub fn reads(&self) -> usize {
        self.k - self.writes
    }

    /// Whether reads form the strict majority — the §4 allocation condition
    /// (always decisive because `k` is odd).
    #[inline]
    pub fn majority_reads(&self) -> bool {
        self.reads() > self.writes
    }

    /// Raw bit accessor: physical slot `slot`.
    #[inline]
    fn bit(&self, slot: usize) -> bool {
        (self.bits.words()[slot / 64] >> (slot % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, slot: usize, value: bool) {
        let mask = 1u64 << (slot % 64);
        let word = &mut self.bits.words_mut()[slot / 64];
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// The request at logical position `i` (0 = oldest, `k - 1` = newest) in
    /// the §4 bit sequence.
    pub fn at(&self, i: usize) -> Request {
        assert!(i < self.k, "window index {i} out of range (k = {})", self.k);
        let slot = (self.head + i) % self.k;
        Request::from_bit(self.bit(slot))
    }

    /// The oldest request — the bit §4's window update drops on the next
    /// [`push`](Self::push).
    #[inline]
    pub fn oldest(&self) -> Request {
        Request::from_bit(self.bit(self.head))
    }

    /// The newest request — the bit §4's window update appended last.
    pub fn newest(&self) -> Request {
        self.at(self.k - 1)
    }

    /// Slides the window exactly as §4 specifies: drops the oldest bit and
    /// appends `req`. Returns the dropped request. O(1).
    pub fn push(&mut self, req: Request) -> Request {
        let dropped = Request::from_bit(self.bit(self.head));
        self.set_bit(self.head, req.as_bit());
        self.head = (self.head + 1) % self.k;
        self.writes = self.writes - usize::from(dropped.is_write()) + usize::from(req.is_write());
        dropped
    }

    /// The window contents, oldest first — the human-readable form of the
    /// §4 bit sequence.
    pub fn to_requests(&self) -> Vec<Request> {
        (0..self.k).map(|i| self.at(i)).collect()
    }

    /// The same logical window re-based so the oldest request sits in
    /// slot 0 (`head == 0`) — exactly the representation
    /// [`from_requests`](Self::from_requests) builds. This is the form
    /// shipped between MC and SC on ownership handoff (§4): re-basing at
    /// the sender keeps the receiving side's representation (and thus
    /// derived equality/hashing of node state, which the model checker
    /// relies on for deduplication) independent of the sender's ring
    /// position, without round-tripping through a heap-allocated request
    /// vector.
    pub fn canonical(&self) -> RequestWindow {
        if self.head == 0 {
            return self.clone();
        }
        let mut out = RequestWindow {
            bits: Bits::zeroed(self.k.div_ceil(64)),
            k: self.k,
            head: 0,
            writes: self.writes,
        };
        for i in 0..self.k {
            if self.at(i).is_write() {
                out.set_bit(i, true);
            }
        }
        out
    }
}

// Hand-written (de)serialization keeping the exact field layout the
// pre-inline-storage representation derived (`bits` as a word array of
// length `k.div_ceil(64)`), so snapshots round-trip across the storage
// change.
impl serde::Serialize for RequestWindow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "bits".into(),
                self.bits.words()[..self.k.div_ceil(64)].to_vec().to_value(),
            ),
            ("k".into(), self.k.to_value()),
            ("head".into(), self.head.to_value()),
            ("writes".into(), self.writes.to_value()),
        ])
    }
}

impl serde::Deserialize for RequestWindow {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = serde::de_object(value, "RequestWindow")?;
        let words_vec: Vec<u64> = serde::de_field(fields, "bits", "RequestWindow")?;
        let k: usize = serde::de_field(fields, "k", "RequestWindow")?;
        let head: usize = serde::de_field(fields, "head", "RequestWindow")?;
        let writes: usize = serde::de_field(fields, "writes", "RequestWindow")?;
        let words = k.div_ceil(64);
        if k == 0 || k % 2 == 0 || words_vec.len() != words || head >= k || writes > k {
            return Err(serde::Error::custom("malformed request window"));
        }
        let mut bits = Bits::zeroed(words);
        bits.words_mut()[..words].copy_from_slice(&words_vec);
        Ok(RequestWindow {
            bits,
            k,
            head,
            writes,
        })
    }
}

impl fmt::Display for RequestWindow {
    /// Renders oldest→newest, e.g. `[wrr]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.k {
            write!(f, "{}", self.at(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_with_reads() {
        let w = RequestWindow::filled(5, Request::Read);
        assert_eq!(w.k(), 5);
        assert_eq!(w.reads(), 5);
        assert_eq!(w.writes(), 0);
        assert!(w.majority_reads());
    }

    #[test]
    fn filled_with_writes() {
        let w = RequestWindow::filled(5, Request::Write);
        assert_eq!(w.writes(), 5);
        assert!(!w.majority_reads());
        assert_eq!(w.to_requests(), vec![Request::Write; 5]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_k_is_rejected() {
        let _ = RequestWindow::filled(4, Request::Read);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_is_rejected() {
        let _ = RequestWindow::filled(0, Request::Read);
    }

    #[test]
    fn push_slides_and_returns_dropped() {
        let mut w = RequestWindow::filled(3, Request::Read);
        assert_eq!(w.push(Request::Write), Request::Read); // [r r w]
        assert_eq!(w.push(Request::Write), Request::Read); // [r w w]
        assert_eq!(w.writes(), 2);
        assert!(!w.majority_reads());
        assert_eq!(w.push(Request::Read), Request::Read); // [w w r]
        assert_eq!(
            w.to_requests(),
            vec![Request::Write, Request::Write, Request::Read]
        );
        assert_eq!(w.push(Request::Read), Request::Write); // [w r r]
        assert!(w.majority_reads());
    }

    #[test]
    fn oldest_and_newest() {
        let mut w = RequestWindow::filled(3, Request::Read);
        w.push(Request::Write); // [r r w]
        assert_eq!(w.oldest(), Request::Read);
        assert_eq!(w.newest(), Request::Write);
    }

    #[test]
    fn from_requests_preserves_order() {
        let reqs = vec![Request::Write, Request::Read, Request::Write];
        let w = RequestWindow::from_requests(&reqs);
        assert_eq!(w.to_requests(), reqs);
        assert_eq!(w.writes(), 2);
    }

    #[test]
    fn display_renders_oldest_first() {
        let w = RequestWindow::from_requests(&[Request::Write, Request::Read, Request::Read]);
        assert_eq!(w.to_string(), "[wrr]");
    }

    #[test]
    fn k_one_window() {
        let mut w = RequestWindow::filled(1, Request::Write);
        assert!(!w.majority_reads());
        w.push(Request::Read);
        assert!(w.majority_reads());
        assert_eq!(w.push(Request::Write), Request::Read);
        assert!(!w.majority_reads());
    }

    #[test]
    fn large_window_spanning_multiple_words() {
        // k = 129 needs three 64-bit words; exercise the word-boundary code.
        let mut w = RequestWindow::filled(129, Request::Write);
        assert_eq!(w.writes(), 129);
        for _ in 0..65 {
            w.push(Request::Read);
        }
        assert_eq!(w.reads(), 65);
        assert_eq!(w.writes(), 64);
        assert!(w.majority_reads());
        // The newest 65 entries are reads, the oldest 64 still writes.
        for i in 0..64 {
            assert_eq!(w.at(i), Request::Write, "position {i}");
        }
        for i in 64..129 {
            assert_eq!(w.at(i), Request::Read, "position {i}");
        }
    }

    #[test]
    fn canonical_rebases_without_changing_contents() {
        let mut w = RequestWindow::filled(5, Request::Read);
        // Push a non-multiple of k so the ring head lands mid-array.
        for &r in &[Request::Write, Request::Read, Request::Write] {
            w.push(r);
        }
        assert_ne!(w.head, 0, "the test needs a rotated ring to be meaningful");
        let canon = w.canonical();
        // Same logical window...
        assert_eq!(canon.to_requests(), w.to_requests());
        assert_eq!(canon.writes(), w.writes());
        assert_eq!(canon.k(), w.k());
        // ...in the exact representation `from_requests` builds, so the
        // derived equality the model checker dedups on sees them as one.
        assert_eq!(canon.head, 0);
        assert_eq!(canon, RequestWindow::from_requests(&w.to_requests()));
        // Re-canonicalising is a fixed point.
        assert_eq!(canon.canonical(), canon);
    }

    #[test]
    fn canonical_spill_window_rebases_too() {
        let mut w = RequestWindow::filled(129, Request::Write);
        for _ in 0..70 {
            w.push(Request::Read);
        }
        let canon = w.canonical();
        assert_eq!(canon.head, 0);
        assert_eq!(canon.to_requests(), w.to_requests());
        assert_eq!(canon, RequestWindow::from_requests(&w.to_requests()));
    }

    #[test]
    fn serde_roundtrip_preserves_ring_state() {
        // Inline storage with a rotated head, and spill storage (k = 129):
        // both must round-trip to the identical struct, ring position
        // included.
        let mut small = RequestWindow::filled(5, Request::Read);
        small.push(Request::Write);
        small.push(Request::Read);
        let mut large = RequestWindow::filled(129, Request::Write);
        for _ in 0..65 {
            large.push(Request::Read);
        }
        for w in [small, large] {
            let value = serde::Serialize::to_value(&w);
            let back: RequestWindow =
                serde::Deserialize::from_value(&value).expect("roundtrip parses");
            assert_eq!(back, w);
            assert_eq!(back.head, w.head);
            assert_eq!(back.to_requests(), w.to_requests());
        }
    }

    #[test]
    fn serde_rejects_malformed_windows() {
        let valid = serde::Serialize::to_value(&RequestWindow::filled(3, Request::Read));
        let corrupt = |field: &str, v: u64| {
            let serde::Value::Object(mut fields) = valid.clone() else {
                panic!("windows serialize to objects")
            };
            for (name, slot) in &mut fields {
                if name == field {
                    *slot = serde::Serialize::to_value(&(v as usize));
                }
            }
            serde::Value::Object(fields)
        };
        for bad in [
            corrupt("k", 0),      // zero size
            corrupt("k", 4),      // even size
            corrupt("k", 129),    // word count no longer matches the bits array
            corrupt("head", 3),   // head out of range
            corrupt("writes", 4), // more writes than slots
        ] {
            assert!(
                <RequestWindow as serde::Deserialize>::from_value(&bad).is_err(),
                "malformed window accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn write_count_always_matches_contents() {
        let mut w = RequestWindow::filled(7, Request::Read);
        let pattern = [
            Request::Write,
            Request::Write,
            Request::Read,
            Request::Write,
            Request::Read,
            Request::Read,
            Request::Write,
            Request::Write,
            Request::Read,
        ];
        for &r in &pattern {
            w.push(r);
            let actual = w.to_requests().iter().filter(|x| x.is_write()).count();
            assert_eq!(w.writes(), actual);
        }
    }
}
