//! The *relevant request* model of the paper (§3).
//!
//! Only two kinds of request affect the allocation decision and its
//! communication cost: **reads issued at the mobile computer (MC)** and
//! **writes issued at the stationary computer (SC)**. Reads at the SC are
//! always local (cost 0) and writes at the MC always cost one interaction
//! regardless of the allocation scheme, so the paper — and this crate —
//! ignores them.

use std::fmt;

/// A single *relevant* request on the data item.
///
/// `Read` is issued at the mobile computer; `Write` is issued at the
/// stationary computer. The paper encodes these as the bits of the sliding
/// window ("0 represents a read and 1 represents a write", §4); the same
/// encoding is used by [`Request::as_bit`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Request {
    /// A read of the data item, issued at the mobile computer.
    Read,
    /// A write of the data item, issued at the stationary computer.
    Write,
}

impl Request {
    /// Returns `true` if this request is a read (§3).
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, Request::Read)
    }

    /// Returns `true` if this request is a write (§3).
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, Request::Write)
    }

    /// The paper's bit encoding (§4's window bits): `false` (0) for a read,
    /// `true` (1) for a write.
    #[inline]
    pub const fn as_bit(self) -> bool {
        matches!(self, Request::Write)
    }

    /// Inverse of [`Request::as_bit`] (§4's window bits).
    #[inline]
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            Request::Write
        } else {
            Request::Read
        }
    }

    /// The request with the opposite kind — builds the §6.4 alternating
    /// worst cases.
    #[inline]
    pub const fn flipped(self) -> Self {
        match self {
            Request::Read => Request::Write,
            Request::Write => Request::Read,
        }
    }

    /// One-letter mnemonic used throughout the paper's examples
    /// (`r` / `w`, as in the §3 schedule `w,r,r,r,w,r,w`).
    #[inline]
    pub const fn letter(self) -> char {
        match self {
            Request::Read => 'r',
            Request::Write => 'w',
        }
    }

    /// Parses the paper's one-letter mnemonic (`r`/`w`, §3),
    /// case-insensitively.
    pub fn from_letter(c: char) -> Result<Self, ParseRequestError> {
        match c {
            'r' | 'R' => Ok(Request::Read),
            'w' | 'W' => Ok(Request::Write),
            other => Err(ParseRequestError { found: other }),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Error returned when a character is not a valid §3 request mnemonic
/// (`r`/`w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseRequestError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid request mnemonic {:?}: expected 'r' (read) or 'w' (write)",
            self.found
        )
    }
}

impl std::error::Error for ParseRequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_encoding_matches_paper() {
        // §4: "0 represents a read and 1 represents a write".
        assert!(!Request::Read.as_bit());
        assert!(Request::Write.as_bit());
    }

    #[test]
    fn bit_roundtrip() {
        for req in [Request::Read, Request::Write] {
            assert_eq!(Request::from_bit(req.as_bit()), req);
        }
    }

    #[test]
    fn letter_roundtrip() {
        for req in [Request::Read, Request::Write] {
            assert_eq!(Request::from_letter(req.letter()).unwrap(), req);
        }
    }

    #[test]
    fn letters_parse_case_insensitively() {
        assert_eq!(Request::from_letter('R').unwrap(), Request::Read);
        assert_eq!(Request::from_letter('W').unwrap(), Request::Write);
    }

    #[test]
    fn invalid_letter_is_an_error() {
        let err = Request::from_letter('x').unwrap_err();
        assert_eq!(err.found, 'x');
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn flipped_is_an_involution() {
        for req in [Request::Read, Request::Write] {
            assert_eq!(req.flipped().flipped(), req);
            assert_ne!(req.flipped(), req);
        }
    }

    #[test]
    fn predicates_are_exclusive() {
        assert!(Request::Read.is_read() && !Request::Read.is_write());
        assert!(Request::Write.is_write() && !Request::Write.is_read());
    }

    #[test]
    fn display_uses_letters() {
        assert_eq!(Request::Read.to_string(), "r");
        assert_eq!(Request::Write.to_string(), "w");
    }
}
