//! # mdr-core — data-allocation policies for mobile computers
//!
//! Core types and algorithms from **Huang, Sistla, Wolfson, "Data
//! Replication for Mobile Computers" (ACM SIGMOD 1994)**.
//!
//! The setting: a mobile computer (MC) accesses a data item whose primary
//! copy lives on a stationary computer (SC) across an expensive wireless
//! link. The only decision is whether the MC should additionally hold a
//! replica — *one-copy* vs *two-copies* — and the only objective is
//! communication cost, measured either per cellular **connection** or per
//! **message** (data messages cost 1, control messages cost ω ≤ 1).
//!
//! This crate provides:
//!
//! * [`Request`] / [`Schedule`] — the relevant-request model (§3);
//! * [`Action`] / [`CostModel`] — communication events and their prices in
//!   both cost models (§3);
//! * [`AllocationPolicy`] implementations: the statics [`St1`] / [`St2`],
//!   the sliding-window family [`SlidingWindow`] (§4, including the
//!   optimized SW1), and the competitive statics [`T1`] / [`T2`] (§7.1);
//! * [`RequestWindow`] — the k-bit window the SWk protocol ships between
//!   the MC and the SC;
//! * [`run_policy`] / [`trace_policy`] — reference execution with exact
//!   cost accounting.
//!
//! The closed-form analysis lives in `mdr-analysis`, the distributed
//! protocol simulation in `mdr-sim`, the offline adversary in
//! `mdr-adversary`, and the §7.2 multi-object extension in `mdr-multi`.
//!
//! ## Quick example
//!
//! ```
//! use mdr_core::{CostModel, PolicySpec, Schedule, run_spec};
//!
//! // A bursty schedule: mostly reads, then a write burst.
//! let schedule: Schedule = "rrrrrwwwwwrrrrr".parse().unwrap();
//!
//! let st1 = run_spec(PolicySpec::St1, &schedule, CostModel::Connection);
//! let sw3 = run_spec(PolicySpec::SlidingWindow { k: 3 }, &schedule, CostModel::Connection);
//!
//! // The adaptive policy beats the static one on this mixed workload.
//! assert!(sw3.total_cost < st1.total_cost);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod action;
mod cost;
mod policy;
mod request;
mod run;
mod schedule;
mod window;

pub use action::{Action, ActionCounts};
pub use cost::{approx_eq, CostModel, ParseModelError, COST_EPSILON};
pub use policy::{
    AdaptivePolicy, AllocationPolicy, ParsePolicyError, PolicySpec, SlidingWindow, St1, St2, T1, T2,
};
pub use request::{ParseRequestError, Request};
pub use run::{run_policy, run_spec, trace_policy, RunOutcome, TraceStep};
pub use schedule::Schedule;
pub use window::RequestWindow;
