//! The two cost models of the paper (§3): connection-based and
//! message-based pricing of [`Action`]s.

use crate::action::{Action, ActionCounts};
use std::fmt;

/// Absolute tolerance for comparing accumulated floating-point costs.
///
/// Costs are sums of prices `1` and `ω` (§3), so two mathematically equal
/// totals can differ by a few ulps once ω is irrational in binary; every
/// cost comparison in the workspace goes through [`approx_eq`] with this
/// tolerance instead of a raw float `==` (enforced by `cargo xtask lint`).
pub const COST_EPSILON: f64 = 1e-9;

/// Whether two accumulated costs (§3) are equal within [`COST_EPSILON`].
///
/// This is the sanctioned way to compare cost totals; the workspace lint
/// rejects raw `f64 ==` in cost-accounting paths.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_EPSILON
}

/// How communication is charged — the paper's two cost models (§3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CostModel {
    /// Connection (time) based, as in cellular telephony (§3): every remote
    /// interaction — a remote read (request + response), a propagated write,
    /// or a delete-request — executes within one minimum-length connection
    /// and costs 1. Local operations cost 0.
    Connection,
    /// Message based, as in packet radio networks (§3): a *data message*
    /// costs 1 and a *control message* costs `omega` (written ω in the
    /// paper), with `0 ≤ ω ≤ 1` because a control message is never longer
    /// than a data message.
    Message {
        /// Ratio of control-message cost to data-message cost.
        omega: f64,
    },
}

impl CostModel {
    /// Convenience constructor for the message model (§3).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ omega ≤ 1` (the paper's standing assumption).
    pub fn message(omega: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&omega),
            "control/data cost ratio ω must lie in [0, 1], got {omega}"
        );
        CostModel::Message { omega }
    }

    /// The control/data cost ratio: `ω` for the §3 message model. In the
    /// connection model every chargeable interaction costs one connection,
    /// i.e. control interactions cost the same as data interactions, so the
    /// effective ratio is 1.
    pub fn omega(&self) -> f64 {
        match self {
            CostModel::Connection => 1.0,
            CostModel::Message { omega } => *omega,
        }
    }

    /// The price of one action under this model.
    ///
    /// Connection model (§3): 1 connection per remote interaction.
    /// Message model (§3): data messages cost 1, control messages cost ω;
    /// a remote read costs `1 + ω`, a propagated write 1, a propagated write
    /// with deallocation `1 + ω`, SW1's delete-request write `ω`.
    pub fn price(&self, action: Action) -> f64 {
        match self {
            CostModel::Connection => action.connections() as f64,
            CostModel::Message { omega } => {
                action.data_messages() as f64 + *omega * action.control_messages() as f64
            }
        }
    }

    /// Prices a whole sequence of actions — the §3 COST of a run.
    pub fn price_all<I: IntoIterator<Item = Action>>(&self, actions: I) -> f64 {
        actions.into_iter().map(|a| self.price(a)).sum()
    }

    /// Prices an [`ActionCounts`] ledger: the §3 bill of a whole run,
    /// computed from the tallies instead of the action sequence. Equal to
    /// [`price_all`](Self::price_all) over any sequence with these tallies
    /// (prices depend only on the per-action message/connection counts).
    pub fn price_counts(&self, counts: &ActionCounts) -> f64 {
        match self {
            CostModel::Connection => counts.connections() as f64,
            CostModel::Message { omega } => {
                counts.data_messages() as f64 + *omega * counts.control_messages() as f64
            }
        }
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModel::Connection => write!(f, "connection"),
            CostModel::Message { omega } => write!(f, "message(ω={omega})"),
        }
    }
}

/// Error from parsing a [`CostModel`] out of its textual notation (the §3
/// connection / message(ω) naming).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError(String);

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseModelError {}

impl std::str::FromStr for CostModel {
    type Err = ParseModelError;

    /// Parses `connection` (or `conn`) and `message:<ω>` (or `msg:<ω>`),
    /// case-insensitively; a bare `message` defaults to ω = 0.5. The ω
    /// range check of [`CostModel::message`] is enforced here as an error
    /// rather than a panic, so untrusted input (CLI flags, serve-layer
    /// requests) can be rejected gracefully.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let low = s.to_ascii_lowercase();
        if low == "connection" || low == "conn" {
            return Ok(CostModel::Connection);
        }
        if low == "message" || low == "msg" {
            return Ok(CostModel::Message { omega: 0.5 });
        }
        if let Some(omega) = low
            .strip_prefix("message:")
            .or_else(|| low.strip_prefix("msg:"))
        {
            let omega: f64 = omega
                .parse()
                .map_err(|_| ParseModelError(format!("invalid ω in {s:?}")))?;
            if !(0.0..=1.0).contains(&omega) {
                return Err(ParseModelError(format!(
                    "ω must lie in [0, 1], got {omega}"
                )));
            }
            return Ok(CostModel::Message { omega });
        }
        Err(ParseModelError(format!(
            "unknown cost model {s:?}; expected 'connection' or 'message:<omega>'"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_prices_match_section_3() {
        let m = CostModel::Connection;
        assert_eq!(m.price(Action::LocalRead), 0.0);
        assert_eq!(m.price(Action::SilentWrite), 0.0);
        assert_eq!(m.price(Action::RemoteRead { allocates: false }), 1.0);
        assert_eq!(m.price(Action::RemoteRead { allocates: true }), 1.0);
        assert_eq!(m.price(Action::PropagatedWrite { deallocates: false }), 1.0);
        // Deallocation piggybacks within the same connection.
        assert_eq!(m.price(Action::PropagatedWrite { deallocates: true }), 1.0);
        assert_eq!(m.price(Action::DeleteRequestWrite), 1.0);
    }

    #[test]
    fn message_prices_match_section_3() {
        let omega = 0.25;
        let m = CostModel::message(omega);
        assert_eq!(m.price(Action::LocalRead), 0.0);
        assert_eq!(m.price(Action::SilentWrite), 0.0);
        // Remote read: control request + data response = 1 + ω.
        assert_eq!(
            m.price(Action::RemoteRead { allocates: false }),
            1.0 + omega
        );
        // Allocation piggybacks for free.
        assert_eq!(m.price(Action::RemoteRead { allocates: true }), 1.0 + omega);
        assert_eq!(m.price(Action::PropagatedWrite { deallocates: false }), 1.0);
        // "if the MC deallocates its copy in response then the cost is 1 + ω".
        assert_eq!(
            m.price(Action::PropagatedWrite { deallocates: true }),
            1.0 + omega
        );
        // "Then the cost of the write is ω" (SW1).
        assert_eq!(m.price(Action::DeleteRequestWrite), omega);
    }

    #[test]
    fn omega_bounds_are_enforced() {
        assert!(std::panic::catch_unwind(|| CostModel::message(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| CostModel::message(-0.1)).is_err());
        let _ = CostModel::message(0.0);
        let _ = CostModel::message(1.0);
    }

    #[test]
    fn omega_accessor() {
        assert_eq!(CostModel::Connection.omega(), 1.0);
        assert_eq!(CostModel::message(0.3).omega(), 0.3);
    }

    #[test]
    fn message_model_with_omega_one_prices_like_counting_messages() {
        // At ω = 1 a control message costs as much as a data message, so the
        // price is simply the number of messages.
        let m = CostModel::message(1.0);
        assert_eq!(m.price(Action::RemoteRead { allocates: false }), 2.0);
        assert_eq!(m.price(Action::PropagatedWrite { deallocates: true }), 2.0);
        assert_eq!(m.price(Action::DeleteRequestWrite), 1.0);
    }

    #[test]
    fn price_all_sums() {
        let m = CostModel::message(0.5);
        let total = m.price_all([
            Action::RemoteRead { allocates: true },        // 1.5
            Action::LocalRead,                             // 0
            Action::PropagatedWrite { deallocates: true }, // 1.5
            Action::DeleteRequestWrite,                    // 0.5
        ]);
        assert_eq!(total, 3.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CostModel::Connection.to_string(), "connection");
        assert_eq!(CostModel::message(0.4).to_string(), "message(ω=0.4)");
    }

    #[test]
    fn from_str_parses_both_models() {
        assert_eq!("connection".parse(), Ok(CostModel::Connection));
        assert_eq!("CONN".parse(), Ok(CostModel::Connection));
        assert_eq!("message:0.4".parse(), Ok(CostModel::message(0.4)));
        assert_eq!("msg:1".parse(), Ok(CostModel::message(1.0)));
        assert_eq!("message".parse(), Ok(CostModel::message(0.5)));
        assert!("message:1.5".parse::<CostModel>().is_err());
        assert!("message:x".parse::<CostModel>().is_err());
        assert!("minutes".parse::<CostModel>().is_err());
    }
}
