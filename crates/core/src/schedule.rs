//! Schedules: finite sequences of relevant requests (§3).
//!
//! A schedule is the unit over which every algorithm in the paper is costed,
//! and the object quantified over in the competitive analysis ("for any
//! schedule s, COST_A(s) ≤ c · COST_M(s) + b"). This module provides a
//! newtype with parsing, construction helpers for the structured schedules
//! used in the worst-case proofs (runs, cycles, alternations), and summary
//! statistics.

use crate::request::{ParseRequestError, Request};
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

/// A finite sequence of relevant requests on a single data item.
///
/// The textual format is the paper's own: a string of `r`s and `w`s
/// (separators `,`, space and `;` are accepted and ignored), e.g. the §3
/// example schedule `"w,r,r,r,w,r,w"`.
///
/// ```
/// use mdr_core::{Request, Schedule};
///
/// let s: Schedule = "w,r,r,r,w,r,w".parse().unwrap();
/// assert_eq!(s.len(), 7);
/// assert_eq!(s.reads(), 4);
/// assert_eq!(s.writes(), 3);
/// assert_eq!(s[0], Request::Write);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct Schedule(Vec<Request>);

impl Schedule {
    /// Creates an empty schedule (§3's empty sequence of relevant requests).
    pub const fn new() -> Self {
        Schedule(Vec::new())
    }

    /// Wraps an explicit request vector into a §3 schedule.
    pub fn from_requests(requests: Vec<Request>) -> Self {
        Schedule(requests)
    }

    /// A schedule of `n` consecutive reads — the sequence used in §5.3 to
    /// show that ST1 is not competitive.
    pub fn all_reads(n: usize) -> Self {
        Schedule(vec![Request::Read; n])
    }

    /// A schedule of `n` consecutive writes — the sequence used in §5.3 to
    /// show that ST2 is not competitive.
    pub fn all_writes(n: usize) -> Self {
        Schedule(vec![Request::Write; n])
    }

    /// `cycles` repetitions of the block `reads_per_cycle` reads followed by
    /// `writes_per_cycle` writes — the cycle shape of the §5.3/§6.4
    /// worst-case arguments.
    pub fn read_write_cycles(
        reads_per_cycle: usize,
        writes_per_cycle: usize,
        cycles: usize,
    ) -> Self {
        let mut v = Vec::with_capacity(cycles * (reads_per_cycle + writes_per_cycle));
        for _ in 0..cycles {
            v.extend(std::iter::repeat_n(Request::Read, reads_per_cycle));
            v.extend(std::iter::repeat_n(Request::Write, writes_per_cycle));
        }
        Schedule(v)
    }

    /// `cycles` repetitions of writes followed by reads — the canonical
    /// §6.4 adversarial block against SWk (see `mdr-adversary`).
    pub fn write_read_cycles(
        writes_per_cycle: usize,
        reads_per_cycle: usize,
        cycles: usize,
    ) -> Self {
        let mut v = Vec::with_capacity(cycles * (reads_per_cycle + writes_per_cycle));
        for _ in 0..cycles {
            v.extend(std::iter::repeat_n(Request::Write, writes_per_cycle));
            v.extend(std::iter::repeat_n(Request::Read, reads_per_cycle));
        }
        Schedule(v)
    }

    /// A strictly alternating schedule of length `n` starting with `first` —
    /// the §6.4 worst case for SW1 (`r,w,r,w,…`).
    pub fn alternating(first: Request, n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        let mut cur = first;
        for _ in 0..n {
            v.push(cur);
            cur = cur.flipped();
        }
        Schedule(v)
    }

    /// Decodes index `bits` (little-endian: bit 0 is the first request) into
    /// a schedule of length `len`. Enumerating `0..(1 << len)` enumerates all
    /// §3 schedules of that length; used by the exhaustive worst-case search.
    pub fn from_bits(bits: u64, len: usize) -> Self {
        assert!(len <= 63, "from_bits supports schedules up to length 63");
        let v = (0..len)
            .map(|i| Request::from_bit((bits >> i) & 1 == 1))
            .collect();
        Schedule(v)
    }

    /// Number of relevant requests (§3).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the schedule has no requests (§3).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of reads in the schedule (§3).
    pub fn reads(&self) -> usize {
        self.0.iter().filter(|r| r.is_read()).count()
    }

    /// Number of writes in the schedule (§3).
    pub fn writes(&self) -> usize {
        self.0.iter().filter(|r| r.is_write()).count()
    }

    /// Empirical write fraction θ̂ = writes / len, the quantity the §4
    /// sliding window estimates. Returns `None` for an empty schedule.
    pub fn write_fraction(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.writes() as f64 / self.len() as f64)
        }
    }

    /// Iterates over the requests in schedule order (§3).
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Request>> {
        self.0.iter().copied()
    }

    /// The underlying slice of §3 requests.
    pub fn as_slice(&self) -> &[Request] {
        &self.0
    }

    /// Appends one relevant request (§3).
    pub fn push(&mut self, req: Request) {
        self.0.push(req);
    }

    /// Appends all requests of `other` (§3 concatenation, in place).
    pub fn extend_from(&mut self, other: &Schedule) {
        self.0.extend_from_slice(&other.0);
    }

    /// Concatenation of two §3 schedules.
    pub fn concat(&self, other: &Schedule) -> Schedule {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Schedule(v)
    }

    /// The schedule repeated `times` times — how the §5.3/§6.4 adversary
    /// cycles are grown.
    pub fn repeat(&self, times: usize) -> Schedule {
        let mut v = Vec::with_capacity(self.len() * times);
        for _ in 0..times {
            v.extend_from_slice(&self.0);
        }
        Schedule(v)
    }

    /// Prefix of the first `n` requests (or the whole schedule if shorter);
    /// §3 schedules are prefix-closed.
    pub fn prefix(&self, n: usize) -> Schedule {
        Schedule(self.0[..n.min(self.len())].to_vec())
    }

    /// The longest run (block of equal requests) in the schedule, as
    /// `(request, run_length)` — runs drive the §5.3 lower bounds. Returns
    /// `None` for an empty schedule.
    pub fn longest_run(&self) -> Option<(Request, usize)> {
        let mut best: Option<(Request, usize)> = None;
        let mut cur_len = 0usize;
        let mut cur_req = None;
        for req in self {
            if Some(req) == cur_req {
                cur_len += 1;
            } else {
                cur_req = Some(req);
                cur_len = 1;
            }
            if best.is_none_or(|(_, l)| cur_len > l) {
                best = Some((req, cur_len));
            }
        }
        best
    }
}

impl Index<usize> for Schedule {
    type Output = Request;

    fn index(&self, index: usize) -> &Request {
        &self.0[index]
    }
}

impl FromIterator<Request> for Schedule {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Self {
        Schedule(iter.into_iter().collect())
    }
}

impl IntoIterator for Schedule {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = Request;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Request>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromStr for Schedule {
    type Err = ParseRequestError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut v = Vec::with_capacity(s.len());
        for c in s.chars() {
            if matches!(c, ',' | ' ' | ';' | '\t' | '\n') {
                continue;
            }
            v.push(Request::from_letter(c)?);
        }
        Ok(Schedule(v))
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for req in self {
            write!(f, "{req}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        // §3: "For example, w,r,r,r,w,r,w is a schedule."
        let s: Schedule = "w,r,r,r,w,r,w".parse().unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 3);
        assert_eq!(s.to_string(), "wrrrwrw");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("rwx".parse::<Schedule>().is_err());
    }

    #[test]
    fn parse_display_roundtrip() {
        let s: Schedule = "rrwwrwr".parse().unwrap();
        let round: Schedule = s.to_string().parse().unwrap();
        assert_eq!(s, round);
    }

    #[test]
    fn all_reads_and_all_writes() {
        assert_eq!(Schedule::all_reads(4).to_string(), "rrrr");
        assert_eq!(Schedule::all_writes(3).to_string(), "www");
        assert_eq!(Schedule::all_reads(0), Schedule::new());
    }

    #[test]
    fn cycles_have_expected_shape() {
        let s = Schedule::write_read_cycles(2, 2, 2);
        assert_eq!(s.to_string(), "wwrrwwrr");
        let s = Schedule::read_write_cycles(3, 1, 2);
        assert_eq!(s.to_string(), "rrrwrrrw");
    }

    #[test]
    fn alternating_starts_correctly() {
        assert_eq!(Schedule::alternating(Request::Read, 5).to_string(), "rwrwr");
        assert_eq!(Schedule::alternating(Request::Write, 4).to_string(), "wrwr");
    }

    #[test]
    fn from_bits_enumerates_all_schedules() {
        use std::collections::HashSet;
        let all: HashSet<String> = (0u64..8)
            .map(|b| Schedule::from_bits(b, 3).to_string())
            .collect();
        assert_eq!(all.len(), 8);
        assert!(all.contains("rrr"));
        assert!(all.contains("www"));
        assert!(all.contains("wrr")); // bit 0 set → first request is a write
    }

    #[test]
    fn write_fraction() {
        let s: Schedule = "rrww".parse().unwrap();
        assert_eq!(s.write_fraction(), Some(0.5));
        assert_eq!(Schedule::new().write_fraction(), None);
    }

    #[test]
    fn concat_repeat_prefix() {
        let a: Schedule = "rw".parse().unwrap();
        let b: Schedule = "ww".parse().unwrap();
        assert_eq!(a.concat(&b).to_string(), "rwww");
        assert_eq!(a.repeat(3).to_string(), "rwrwrw");
        assert_eq!(a.repeat(0), Schedule::new());
        assert_eq!(a.concat(&b).prefix(3).to_string(), "rww");
        assert_eq!(a.prefix(99), a);
    }

    #[test]
    fn longest_run_finds_the_longest_block() {
        let s: Schedule = "rwwwrrw".parse().unwrap();
        assert_eq!(s.longest_run(), Some((Request::Write, 3)));
        assert_eq!(Schedule::new().longest_run(), None);
        let s: Schedule = "r".parse().unwrap();
        assert_eq!(s.longest_run(), Some((Request::Read, 1)));
    }

    #[test]
    fn iterator_traits() {
        let s: Schedule = "rw".parse().unwrap();
        let collected: Schedule = s.iter().collect();
        assert_eq!(collected, s);
        let v: Vec<Request> = (&s).into_iter().collect();
        assert_eq!(v, vec![Request::Read, Request::Write]);
    }
}
