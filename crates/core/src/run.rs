//! Executing a policy over a schedule under a cost model.
//!
//! This is the reference ("oracle") execution path: a pure, in-process
//! replay with exact cost accounting. The distributed simulator in
//! `mdr-sim` must produce identical costs for the same schedule — that
//! equivalence is one of the workspace's integration tests.

use crate::action::{Action, ActionCounts};
use crate::cost::CostModel;
use crate::policy::{AllocationPolicy, PolicySpec};
use crate::request::Request;
use crate::schedule::Schedule;

/// The result of running one policy over one schedule under one §3 cost
/// model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunOutcome {
    /// Total communication cost of the schedule (COST(σ) in the paper).
    pub total_cost: f64,
    /// Per-action tallies.
    pub counts: ActionCounts,
    /// Whether the MC held a replica after the last request.
    pub final_copy: bool,
}

impl RunOutcome {
    /// Mean cost per request — the per-request normalization behind the §5
    /// expected-cost measure. 0 for an empty schedule.
    pub fn cost_per_request(&self) -> f64 {
        let n = self.counts.total();
        if n == 0 {
            0.0
        } else {
            self.total_cost / n as f64
        }
    }
}

/// Runs `policy` (starting from its current state) over `schedule`, pricing
/// each action under `model` — computes the paper's COST_A(σ) (§3).
pub fn run_policy(
    policy: &mut dyn AllocationPolicy,
    schedule: &Schedule,
    model: CostModel,
) -> RunOutcome {
    let mut total_cost = 0.0;
    let mut counts = ActionCounts::default();
    for req in schedule {
        let action = policy.on_request(req);
        debug_assert_eq!(
            action.is_read_action(),
            req.is_read(),
            "policy answered a {req:?} with {action}"
        );
        total_cost += model.price(action);
        counts.record(action);
    }
    RunOutcome {
        total_cost,
        counts,
        final_copy: policy.has_copy(),
    }
}

/// Builds the policy described by `spec` and runs it from its initial
/// state, yielding the §3 COST of the schedule.
pub fn run_spec(spec: PolicySpec, schedule: &Schedule, model: CostModel) -> RunOutcome {
    let mut policy = spec.build();
    run_policy(policy.as_mut(), schedule, model)
}

/// One step of an execution trace (one §3 request/action pair).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceStep {
    /// Position in the schedule (0-based).
    pub index: usize,
    /// The request served.
    pub request: Request,
    /// The action the policy took.
    pub action: Action,
    /// The priced cost of that action.
    pub cost: f64,
    /// Whether the MC holds a replica *after* this step.
    pub copy_after: bool,
}

/// Like [`run_policy`] but retains the full step-by-step trace — used by
/// the §5.3/§6.4 adversary tooling and for debugging/visualising
/// executions.
pub fn trace_policy(
    policy: &mut dyn AllocationPolicy,
    schedule: &Schedule,
    model: CostModel,
) -> Vec<TraceStep> {
    schedule
        .iter()
        .enumerate()
        .map(|(index, request)| {
            let action = policy.on_request(request);
            TraceStep {
                index,
                request,
                action,
                cost: model.price(action),
                copy_after: policy.has_copy(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_on_paper_example_schedule() {
        // §3 example schedule w,r,r,r,w,r,w under ST1 in the connection
        // model: each of the 4 reads costs one connection.
        let s: Schedule = "w,r,r,r,w,r,w".parse().unwrap();
        let out = run_spec(PolicySpec::St1, &s, CostModel::Connection);
        assert_eq!(out.total_cost, 4.0);
        assert_eq!(out.counts.total(), 7);
        assert!(!out.final_copy);
    }

    #[test]
    fn outcome_cost_per_request() {
        let s: Schedule = "rrrr".parse().unwrap();
        let out = run_spec(PolicySpec::St1, &s, CostModel::Connection);
        assert_eq!(out.cost_per_request(), 1.0);
        let empty = run_spec(PolicySpec::St1, &Schedule::new(), CostModel::Connection);
        assert_eq!(empty.cost_per_request(), 0.0);
    }

    #[test]
    fn trace_records_every_step() {
        let s: Schedule = "rrw".parse().unwrap();
        let mut p = PolicySpec::SlidingWindow { k: 3 }.build();
        let trace = trace_policy(p.as_mut(), &s, CostModel::Connection);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].index, 0);
        assert!(!trace[0].copy_after);
        assert!(trace[1].copy_after, "second read allocates under SW3");
        assert_eq!(trace[1].action, Action::RemoteRead { allocates: true });
        let total: f64 = trace.iter().map(|t| t.cost).sum();
        let mut p2 = PolicySpec::SlidingWindow { k: 3 }.build();
        assert_eq!(
            total,
            run_policy(p2.as_mut(), &s, CostModel::Connection).total_cost
        );
    }

    #[test]
    fn run_continues_from_current_state() {
        // Running two halves sequentially must equal running the whole.
        let s: Schedule = "rrwwrrwwrr".parse().unwrap();
        let (a, b) = (
            s.prefix(5),
            Schedule::from_requests(s.as_slice()[5..].to_vec()),
        );
        let mut p = PolicySpec::SlidingWindow { k: 3 }.build();
        let c1 = run_policy(p.as_mut(), &a, CostModel::Connection).total_cost
            + run_policy(p.as_mut(), &b, CostModel::Connection).total_cost;
        let c2 = run_spec(
            PolicySpec::SlidingWindow { k: 3 },
            &s,
            CostModel::Connection,
        )
        .total_cost;
        assert_eq!(c1, c2);
    }

    #[test]
    fn counts_partition_the_schedule() {
        let s: Schedule = "rwrwwrrrwwwrr".parse().unwrap();
        for spec in PolicySpec::roster(&[1, 3, 5], &[2, 4]) {
            let out = run_spec(spec, &s, CostModel::message(0.5));
            assert_eq!(out.counts.reads() as usize, s.reads(), "{spec}");
            assert_eq!(out.counts.writes() as usize, s.writes(), "{spec}");
        }
    }
}
