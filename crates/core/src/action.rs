//! Communication actions taken by an allocation policy in response to a
//! request.
//!
//! The paper prices the *communication* a policy performs, and the price of
//! the same logical operation differs between the connection model (§5) and
//! the message model (§6). Separating *what happened on the wire* (this
//! module) from *what it costs* ([`crate::cost`]) lets one policy
//! implementation serve both models, and makes SW1's delete-request
//! optimization (§4, end) a first-class, inspectable event.

use std::fmt;

/// What a policy did on the wireless link to serve one request (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Action {
    /// A read served from the mobile computer's local replica. No
    /// communication.
    LocalRead,
    /// A read forwarded to the stationary computer: one control message
    /// (the request) plus one data message (the response).
    ///
    /// If `allocates` is true, the response additionally carries the
    /// save-the-copy indication and the current request window (§4). The
    /// paper treats this piggyback as free in both cost models.
    RemoteRead {
        /// Whether the response established a replica at the MC.
        allocates: bool,
    },
    /// A write at the stationary computer while the MC holds no replica.
    /// Nothing is sent; the write is applied at the SC only.
    SilentWrite,
    /// A write propagated to the MC's replica: one data message.
    ///
    /// If `deallocates` is true the MC responded with a delete-request
    /// control message, dropping its replica (total `1 + ω` in the message
    /// model, one connection in the connection model).
    PropagatedWrite {
        /// Whether the MC dropped its replica in response.
        deallocates: bool,
    },
    /// SW1's optimized write (§4): the MC holds a replica but the window
    /// consists of this single write, so instead of propagating the data the
    /// SC sends only a delete-request control message.
    DeleteRequestWrite,
}

impl Action {
    /// Whether this action serves a read request (§3).
    #[inline]
    pub const fn is_read_action(self) -> bool {
        matches!(self, Action::LocalRead | Action::RemoteRead { .. })
    }

    /// Whether this action serves a write request (§3).
    #[inline]
    pub const fn is_write_action(self) -> bool {
        !self.is_read_action()
    }

    /// Whether this action established a replica at the MC (§4's
    /// save-the-copy indication).
    #[inline]
    pub const fn allocates(self) -> bool {
        matches!(self, Action::RemoteRead { allocates: true })
    }

    /// Whether this action removed the replica from the MC (§4's
    /// delete-request).
    #[inline]
    pub const fn deallocates(self) -> bool {
        matches!(
            self,
            Action::PropagatedWrite { deallocates: true } | Action::DeleteRequestWrite
        )
    }

    /// Number of *data messages* this action puts on the wireless link
    /// (message model accounting, §3).
    #[inline]
    pub const fn data_messages(self) -> u64 {
        match self {
            Action::LocalRead | Action::SilentWrite | Action::DeleteRequestWrite => 0,
            Action::RemoteRead { .. } | Action::PropagatedWrite { .. } => 1,
        }
    }

    /// Number of *control messages* this action puts on the wireless link
    /// (message model accounting, §3): read-requests, delete-requests.
    #[inline]
    pub const fn control_messages(self) -> u64 {
        match self {
            Action::LocalRead | Action::SilentWrite => 0,
            Action::RemoteRead { .. } => 1, // the read-request
            Action::PropagatedWrite { deallocates } => {
                if deallocates {
                    1 // the delete-request sent back by the MC
                } else {
                    0
                }
            }
            Action::DeleteRequestWrite => 1,
        }
    }

    /// Number of cellular connections this action requires (connection model
    /// accounting, §3: request+response execute within one minimum-length
    /// connection; a propagated write is one connection).
    #[inline]
    pub const fn connections(self) -> u64 {
        match self {
            Action::LocalRead | Action::SilentWrite => 0,
            Action::RemoteRead { .. }
            | Action::PropagatedWrite { .. }
            | Action::DeleteRequestWrite => 1,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::LocalRead => write!(f, "local-read"),
            Action::RemoteRead { allocates: false } => write!(f, "remote-read"),
            Action::RemoteRead { allocates: true } => write!(f, "remote-read+allocate"),
            Action::SilentWrite => write!(f, "silent-write"),
            Action::PropagatedWrite { deallocates: false } => write!(f, "propagated-write"),
            Action::PropagatedWrite { deallocates: true } => {
                write!(f, "propagated-write+deallocate")
            }
            Action::DeleteRequestWrite => write!(f, "delete-request-write"),
        }
    }
}

/// Tallies of the actions observed over a run; the raw material for both
/// §3 cost models' accounting and for the experiment reports.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ActionCounts {
    /// Reads served locally at the MC.
    pub local_reads: u64,
    /// Reads forwarded to the SC (without allocation).
    pub remote_reads: u64,
    /// Reads forwarded to the SC whose response allocated a replica.
    pub allocating_reads: u64,
    /// Writes applied only at the SC.
    pub silent_writes: u64,
    /// Writes propagated to the MC (replica kept).
    pub propagated_writes: u64,
    /// Writes propagated to the MC after which the MC deallocated.
    pub deallocating_writes: u64,
    /// SW1-style delete-request writes.
    pub delete_request_writes: u64,
}

impl ActionCounts {
    /// Records one action (§3).
    pub fn record(&mut self, action: Action) {
        match action {
            Action::LocalRead => self.local_reads += 1,
            Action::RemoteRead { allocates: false } => self.remote_reads += 1,
            Action::RemoteRead { allocates: true } => self.allocating_reads += 1,
            Action::SilentWrite => self.silent_writes += 1,
            Action::PropagatedWrite { deallocates: false } => self.propagated_writes += 1,
            Action::PropagatedWrite { deallocates: true } => self.deallocating_writes += 1,
            Action::DeleteRequestWrite => self.delete_request_writes += 1,
        }
    }

    /// Total requests recorded — the length of the §3 schedule served.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total read requests recorded (§3).
    pub fn reads(&self) -> u64 {
        self.local_reads + self.remote_reads + self.allocating_reads
    }

    /// Total write requests recorded (§3).
    pub fn writes(&self) -> u64 {
        self.silent_writes
            + self.propagated_writes
            + self.deallocating_writes
            + self.delete_request_writes
    }

    /// Replica allocations performed (§4).
    pub fn allocations(&self) -> u64 {
        self.allocating_reads
    }

    /// Replica deallocations performed (§4).
    pub fn deallocations(&self) -> u64 {
        self.deallocating_writes + self.delete_request_writes
    }

    /// Total data messages (message model, §3).
    pub fn data_messages(&self) -> u64 {
        self.remote_reads
            + self.allocating_reads
            + self.propagated_writes
            + self.deallocating_writes
    }

    /// Total control messages (message model, §3).
    pub fn control_messages(&self) -> u64 {
        self.remote_reads
            + self.allocating_reads
            + self.deallocating_writes
            + self.delete_request_writes
    }

    /// Total cellular connections (connection model, §3).
    pub fn connections(&self) -> u64 {
        self.remote_reads
            + self.allocating_reads
            + self.propagated_writes
            + self.deallocating_writes
            + self.delete_request_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_ACTIONS: [Action; 7] = [
        Action::LocalRead,
        Action::RemoteRead { allocates: false },
        Action::RemoteRead { allocates: true },
        Action::SilentWrite,
        Action::PropagatedWrite { deallocates: false },
        Action::PropagatedWrite { deallocates: true },
        Action::DeleteRequestWrite,
    ];

    #[test]
    fn read_write_partition() {
        for a in ALL_ACTIONS {
            assert_ne!(a.is_read_action(), a.is_write_action(), "{a}");
        }
    }

    #[test]
    fn free_actions_send_nothing() {
        for a in [Action::LocalRead, Action::SilentWrite] {
            assert_eq!(a.data_messages(), 0);
            assert_eq!(a.control_messages(), 0);
            assert_eq!(a.connections(), 0);
        }
    }

    #[test]
    fn remote_read_sends_request_and_response() {
        for allocates in [false, true] {
            let a = Action::RemoteRead { allocates };
            assert_eq!(a.data_messages(), 1);
            assert_eq!(a.control_messages(), 1);
            assert_eq!(a.connections(), 1);
        }
    }

    #[test]
    fn deallocating_write_adds_a_control_message() {
        assert_eq!(
            Action::PropagatedWrite { deallocates: false }.control_messages(),
            0
        );
        assert_eq!(
            Action::PropagatedWrite { deallocates: true }.control_messages(),
            1
        );
        // …but still exactly one connection in the connection model.
        assert_eq!(
            Action::PropagatedWrite { deallocates: true }.connections(),
            1
        );
    }

    #[test]
    fn delete_request_write_is_control_only() {
        let a = Action::DeleteRequestWrite;
        assert_eq!(a.data_messages(), 0);
        assert_eq!(a.control_messages(), 1);
        assert_eq!(a.connections(), 1);
        assert!(a.deallocates());
    }

    #[test]
    fn allocation_deallocation_flags() {
        assert!(Action::RemoteRead { allocates: true }.allocates());
        assert!(!Action::RemoteRead { allocates: false }.allocates());
        assert!(Action::PropagatedWrite { deallocates: true }.deallocates());
        assert!(!Action::PropagatedWrite { deallocates: false }.deallocates());
    }

    #[test]
    fn counts_record_and_aggregate() {
        let mut c = ActionCounts::default();
        for a in ALL_ACTIONS {
            c.record(a);
        }
        assert_eq!(c.total(), 7);
        assert_eq!(c.reads(), 3);
        assert_eq!(c.writes(), 4);
        assert_eq!(c.allocations(), 1);
        assert_eq!(c.deallocations(), 2);
        // Aggregates must agree with the per-action definitions.
        assert_eq!(
            c.data_messages(),
            ALL_ACTIONS.iter().map(|a| a.data_messages()).sum::<u64>()
        );
        assert_eq!(
            c.control_messages(),
            ALL_ACTIONS
                .iter()
                .map(|a| a.control_messages())
                .sum::<u64>()
        );
        assert_eq!(
            c.connections(),
            ALL_ACTIONS.iter().map(|a| a.connections()).sum::<u64>()
        );
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            Action::RemoteRead { allocates: true }.to_string(),
            "remote-read+allocate"
        );
        assert_eq!(
            Action::DeleteRequestWrite.to_string(),
            "delete-request-write"
        );
    }
}
