//! Online data-allocation policies.
//!
//! A policy decides, request by request, whether the mobile computer holds a
//! replica of the data item, and reports the communication [`Action`] each
//! request caused. All the algorithms analyzed in the paper are implemented
//! here:
//!
//! * [`St1`], [`St2`] — the static one-copy / two-copies methods (§2, §5.1);
//! * [`SlidingWindow`] — the SWk family (§4), including the optimized SW1;
//! * [`T1`], [`T2`] — the competitive-ized static methods T1m / T2m (§7.1).

mod adaptive;
mod sliding;
mod static_alloc;
mod tstatic;

pub use adaptive::AdaptivePolicy;
pub use sliding::SlidingWindow;
pub use static_alloc::{St1, St2};
pub use tstatic::{T1, T2};

use crate::action::Action;
use crate::request::Request;
use std::fmt;

/// An online replica-allocation policy (an *allocation method*, §2) for a
/// single data item and a single mobile computer.
///
/// Implementations are deterministic state machines: given the same request
/// sequence they produce the same actions, which is what makes the
/// worst-case (competitive) analysis well-defined.
pub trait AllocationPolicy {
    /// The value-level [`PolicySpec`] this policy instantiates, when it is
    /// one of the paper's §2/§7.1 methods. `PolicySpec` is the canonical
    /// policy identity — hashable, serializable, and displayable without
    /// allocating — so reports and configuration should carry the spec,
    /// not a name string. Extensions whose parameters have no faithful
    /// spec encoding (the §7.2 [`AdaptivePolicy`], whose cost model
    /// carries a real-valued ω) return `None` and provide their own
    /// `Display`.
    fn spec(&self) -> Option<PolicySpec>;

    /// A short human-readable name, e.g. `"SW5"` or `"T1(3)"`.
    #[deprecated(note = "stringly identity that allocates per call; use `spec()` and \
                `PolicySpec`'s `Display` instead")]
    fn name(&self) -> String {
        self.spec()
            .map_or_else(|| "unnamed".to_owned(), |spec| spec.to_string())
    }

    /// Whether the mobile computer currently holds a replica.
    fn has_copy(&self) -> bool;

    /// Serves one request, updating the allocation state and returning the
    /// communication action it caused.
    fn on_request(&mut self, req: Request) -> Action;

    /// Informs the policy that the MC's replica was lost *outside* the
    /// request stream — a volatile MC crash, which is a fault-model
    /// extension beyond the reliable-exchange assumption of §3 (see
    /// `docs/faults.md`).
    ///
    /// The default is a no-op, which is correct for the static methods:
    /// ST1 (§2) never places a replica at the MC, and ST2 (§2) has the SC
    /// re-establish the replica during reconnection recovery, so the
    /// abstract two-copies state is restored before the next request is
    /// served. Dynamic policies override this to fall back to their
    /// cold-start allocation state.
    fn on_replica_lost(&mut self) {}

    /// Returns the policy to its initial state.
    fn reset(&mut self);
}

/// A value-level description of one of the paper's allocation methods
/// (§2, §7.1) — serializable, hashable, and convertible into a boxed
/// policy instance. This is what experiment configurations and reports
/// refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicySpec {
    /// Static one-copy (`ST1`).
    St1,
    /// Static two-copies (`ST2`).
    St2,
    /// Sliding window with window size `k` (odd). `k = 1` is the optimized
    /// SW1 of §4.
    SlidingWindow {
        /// Window size (odd).
        k: usize,
    },
    /// `T1m`: one-copy until `m` consecutive reads, two-copies until the
    /// next write (§7.1).
    T1 {
        /// Consecutive-read threshold.
        m: usize,
    },
    /// `T2m`: two-copies until `m` consecutive writes, one-copy until the
    /// next read (§7.1).
    T2 {
        /// Consecutive-write threshold.
        m: usize,
    },
}

impl PolicySpec {
    /// Instantiates the described §2/§7.1 policy in its initial state.
    pub fn build(&self) -> Box<dyn AllocationPolicy> {
        match *self {
            PolicySpec::St1 => Box::new(St1::new()),
            PolicySpec::St2 => Box::new(St2::new()),
            PolicySpec::SlidingWindow { k } => Box::new(SlidingWindow::new(k)),
            PolicySpec::T1 { m } => Box::new(T1::new(m)),
            PolicySpec::T2 { m } => Box::new(T2::new(m)),
        }
    }

    /// The policy's display name as written in the paper (§2, §7.1) —
    /// `ST1`, `SW3`, `T1(m)`, …
    #[deprecated(note = "allocated a boxed policy per call just to render a string; \
                use the `Display` impl (`format!(\"{spec}\")`) instead")]
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// All the policies the paper compares (§2, §7.1; the Figure 1 and
    /// Figure 2 contenders) for a given list of window sizes and
    /// T-thresholds.
    pub fn roster(window_sizes: &[usize], thresholds: &[usize]) -> Vec<PolicySpec> {
        let mut v = vec![PolicySpec::St1, PolicySpec::St2];
        v.extend(
            window_sizes
                .iter()
                .map(|&k| PolicySpec::SlidingWindow { k }),
        );
        v.extend(thresholds.iter().map(|&m| PolicySpec::T1 { m }));
        v.extend(thresholds.iter().map(|&m| PolicySpec::T2 { m }));
        v
    }
}

impl fmt::Display for PolicySpec {
    /// The paper's notation for each method (§2, §7.1): `ST1`, `ST2`,
    /// `SW<k>`, `T1(m)`, `T2(m)`. This rendering is pinned by reports and
    /// sweep-ledger fixtures, so it must never drift.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PolicySpec::St1 => f.write_str("ST1"),
            PolicySpec::St2 => f.write_str("ST2"),
            PolicySpec::SlidingWindow { k } => write!(f, "SW{k}"),
            PolicySpec::T1 { m } => write!(f, "T1({m})"),
            PolicySpec::T2 { m } => write!(f, "T2({m})"),
        }
    }
}

/// Error from parsing a [`PolicySpec`] out of its textual notation (the
/// paper's §2/§4/§7.1 names: ST1, ST2, SWk, T1m, T2m).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl std::str::FromStr for PolicySpec {
    type Err = ParsePolicyError;

    /// Parses the paper's notation, case-insensitively: `ST1`, `ST2`,
    /// `SW<k>`, and `T1(m)` / `T2(m)` (also accepted with a colon,
    /// `T1:m`). The inverse of the `Display` impl, with the §4/§7.1
    /// parameter constraints enforced (odd positive `k`, `m ≥ 1`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        if up == "ST1" {
            return Ok(PolicySpec::St1);
        }
        if up == "ST2" {
            return Ok(PolicySpec::St2);
        }
        if let Some(k) = up.strip_prefix("SW") {
            let k: usize = k
                .parse()
                .map_err(|_| ParsePolicyError(format!("invalid window size in {s:?}")))?;
            if k == 0 || k % 2 == 0 {
                return Err(ParsePolicyError(format!(
                    "window size must be odd and positive, got {k}"
                )));
            }
            return Ok(PolicySpec::SlidingWindow { k });
        }
        for (prefix, is_t1) in [("T1:", true), ("T2:", false), ("T1(", true), ("T2(", false)] {
            if let Some(rest) = up.strip_prefix(prefix) {
                let digits = rest.trim_end_matches(')');
                let m: usize = digits
                    .parse()
                    .map_err(|_| ParsePolicyError(format!("invalid threshold in {s:?}")))?;
                if m == 0 {
                    return Err(ParsePolicyError("threshold m must be at least 1".into()));
                }
                return Ok(if is_t1 {
                    PolicySpec::T1 { m }
                } else {
                    PolicySpec::T2 { m }
                });
            }
        }
        Err(ParsePolicyError(format!(
            "unknown policy {s:?}; expected ST1, ST2, SW<k>, T1(m) or T2(m)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_the_papers_notation() {
        assert_eq!(PolicySpec::St1.to_string(), "ST1");
        assert_eq!(PolicySpec::St2.to_string(), "ST2");
        assert_eq!(PolicySpec::SlidingWindow { k: 1 }.to_string(), "SW1");
        assert_eq!(PolicySpec::SlidingWindow { k: 7 }.to_string(), "SW7");
        assert_eq!(PolicySpec::T1 { m: 3 }.to_string(), "T1(3)");
        assert_eq!(PolicySpec::T2 { m: 5 }.to_string(), "T2(5)");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_name_paths_match_display() {
        // Back-compat pin: the deprecated stringly paths must keep
        // producing the bytes the reports were built on until they are
        // removed.
        for spec in PolicySpec::roster(&[1, 9], &[2]) {
            assert_eq!(spec.name(), spec.to_string());
            assert_eq!(spec.build().name(), spec.to_string());
        }
    }

    #[test]
    fn built_policies_report_their_spec() {
        for spec in PolicySpec::roster(&[1, 3, 7], &[2, 5]) {
            assert_eq!(spec.build().spec(), Some(spec));
        }
    }

    #[test]
    fn from_str_inverts_display() {
        for spec in PolicySpec::roster(&[1, 3, 9], &[1, 4]) {
            assert_eq!(spec.to_string().parse::<PolicySpec>(), Ok(spec));
        }
        // The colon form and lower case are accepted too.
        assert_eq!("t1:5".parse::<PolicySpec>(), Ok(PolicySpec::T1 { m: 5 }));
        assert_eq!(
            "sw7".parse::<PolicySpec>(),
            Ok(PolicySpec::SlidingWindow { k: 7 })
        );
    }

    #[test]
    fn from_str_rejects_invalid_parameters() {
        assert!("SW4".parse::<PolicySpec>().is_err(), "even window");
        assert!("SW0".parse::<PolicySpec>().is_err());
        assert!("T1(0)".parse::<PolicySpec>().is_err());
        assert!("LRU".parse::<PolicySpec>().is_err());
        assert!("SWx".parse::<PolicySpec>().is_err());
    }

    #[test]
    fn roster_contains_all_families() {
        let roster = PolicySpec::roster(&[1, 3], &[2]);
        assert_eq!(
            roster,
            vec![
                PolicySpec::St1,
                PolicySpec::St2,
                PolicySpec::SlidingWindow { k: 1 },
                PolicySpec::SlidingWindow { k: 3 },
                PolicySpec::T1 { m: 2 },
                PolicySpec::T2 { m: 2 },
            ]
        );
    }

    #[test]
    fn replica_loss_hook_matches_each_policy_recovery_contract() {
        for spec in [
            PolicySpec::St1,
            PolicySpec::St2,
            PolicySpec::SlidingWindow { k: 3 },
            PolicySpec::T1 { m: 2 },
            PolicySpec::T2 { m: 2 },
        ] {
            let mut p = spec.build();
            // Drive each policy into a replica-holding state where possible.
            for _ in 0..4 {
                p.on_request(Request::Read);
            }
            p.on_replica_lost();
            match spec {
                // The static methods keep their abstract allocation state:
                // ST1 never had a replica and ST2's is re-established by the
                // reconnection recovery before the next request.
                PolicySpec::St1 => assert!(!p.has_copy()),
                PolicySpec::St2 => assert!(p.has_copy()),
                _ => assert!(!p.has_copy(), "{spec} must drop the replica"),
            }
        }
    }

    #[test]
    fn built_policies_start_in_initial_state() {
        assert!(!PolicySpec::St1.build().has_copy());
        assert!(PolicySpec::St2.build().has_copy());
        assert!(!PolicySpec::SlidingWindow { k: 3 }.build().has_copy());
        assert!(!PolicySpec::T1 { m: 2 }.build().has_copy());
        assert!(PolicySpec::T2 { m: 2 }.build().has_copy());
    }
}
