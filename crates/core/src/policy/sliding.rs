//! The sliding-window family SWk (§4), including the optimized SW1.
//!
//! The policy examines the window of the latest `k` relevant requests. If
//! reads outnumber writes and the MC holds no replica, the replica is
//! allocated (piggybacked on the pending read's response); if writes
//! outnumber reads and the MC holds a replica, the replica is deallocated
//! (the MC sends a delete-request back after the propagated write). Because
//! `k` is odd, the majority is always strict, and the allocation state is a
//! pure function of the window: **replica present ⟺ reads are the window
//! majority**.
//!
//! For `k = 1` the window after a write consists of just that write, so the
//! copy would always be deallocated; the paper therefore optimizes SW1 to
//! send a short delete-request instead of propagating the data (§4, final
//! remarks). This implementation applies that optimization automatically
//! when `k == 1`.

use crate::action::Action;
use crate::policy::{AllocationPolicy, PolicySpec};
use crate::request::Request;
use crate::window::RequestWindow;

/// The SWk dynamic allocation policy (§4).
///
/// ```
/// use mdr_core::{AllocationPolicy, Request, SlidingWindow};
///
/// let mut sw = SlidingWindow::new(3); // cold start: no replica
/// sw.on_request(Request::Read);       // window [wwr]: remote read
/// sw.on_request(Request::Read);       // window [wrr]: majority reads → allocate
/// assert!(sw.has_copy());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindow {
    window: RequestWindow,
    /// Invariant (checked in debug builds): `has_copy ==
    /// window.majority_reads()` after every request.
    has_copy: bool,
    initial: RequestWindow,
}

impl SlidingWindow {
    /// Creates SWk with a cold-start window (all writes ⇒ no replica at the
    /// MC, matching a mobile computer that has just subscribed).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or even (§4 assumes odd `k`).
    pub fn new(k: usize) -> Self {
        Self::with_window(RequestWindow::filled(k, Request::Write))
    }

    /// Creates SWk starting from an explicit window, e.g. one received from
    /// the other computer during a §4 ownership handoff. The replica state
    /// is derived from the window majority.
    pub fn with_window(window: RequestWindow) -> Self {
        let has_copy = window.majority_reads();
        SlidingWindow {
            initial: window.clone(),
            window,
            has_copy,
        }
    }

    /// Creates SWk that starts *with* a replica (window filled with reads —
    /// the §4 allocation condition holds vacuously).
    pub fn with_initial_copy(k: usize) -> Self {
        Self::with_window(RequestWindow::filled(k, Request::Read))
    }

    /// The window size `k` (§4, odd).
    pub fn k(&self) -> usize {
        self.window.k()
    }

    /// A view of the current §4 request window.
    pub fn window(&self) -> &RequestWindow {
        &self.window
    }
}

impl AllocationPolicy for SlidingWindow {
    fn spec(&self) -> Option<PolicySpec> {
        Some(PolicySpec::SlidingWindow { k: self.window.k() })
    }

    fn has_copy(&self) -> bool {
        self.has_copy
    }

    fn on_request(&mut self, req: Request) -> Action {
        self.window.push(req);
        let majority_reads = self.window.majority_reads();
        let action = match req {
            Request::Read => {
                if self.has_copy {
                    // A read cannot decrease the read majority, so the
                    // replica is kept.
                    Action::LocalRead
                } else if majority_reads {
                    // The flip to a read majority always happens on a read
                    // (§4: "the last request must have been a read"); the SC
                    // piggybacks the save-indication and the window on the
                    // data response.
                    self.has_copy = true;
                    Action::RemoteRead { allocates: true }
                } else {
                    Action::RemoteRead { allocates: false }
                }
            }
            Request::Write => {
                if !self.has_copy {
                    Action::SilentWrite
                } else if majority_reads {
                    Action::PropagatedWrite { deallocates: false }
                } else {
                    // Writes now outnumber reads: deallocate. For k = 1 the
                    // SC knows this in advance and sends only the
                    // delete-request (§4).
                    self.has_copy = false;
                    if self.window.k() == 1 {
                        Action::DeleteRequestWrite
                    } else {
                        Action::PropagatedWrite { deallocates: true }
                    }
                }
            }
        };
        debug_assert_eq!(
            self.has_copy,
            self.window.majority_reads(),
            "SWk invariant violated: replica state must equal window majority"
        );
        action
    }

    fn on_replica_lost(&mut self) {
        // A volatile MC crash returns SWk to the §4 cold-start state: the
        // reconstructed window is conservatively all-writes, so the replica
        // is re-allocated only once reads again take the majority. When the
        // MC holds no replica, the window lives at the SC (§4 division of
        // labour) and survives the crash, so nothing is lost.
        if self.has_copy {
            self.window = RequestWindow::filled(self.window.k(), Request::Write);
            self.has_copy = false;
        }
    }

    fn reset(&mut self) {
        self.window = self.initial.clone();
        self.has_copy = self.initial.majority_reads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::schedule::Schedule;

    fn run(policy: &mut SlidingWindow, s: &str) -> Vec<Action> {
        let sched: Schedule = s.parse().unwrap();
        sched.iter().map(|r| policy.on_request(r)).collect()
    }

    #[test]
    fn cold_start_has_no_copy() {
        let sw = SlidingWindow::new(5);
        assert!(!sw.has_copy());
        assert_eq!(sw.spec(), Some(PolicySpec::SlidingWindow { k: 5 }));
    }

    #[test]
    fn allocation_happens_when_reads_take_majority() {
        let mut sw = SlidingWindow::new(3);
        let actions = run(&mut sw, "rr");
        assert_eq!(
            actions,
            vec![
                Action::RemoteRead { allocates: false }, // window [w w r]
                Action::RemoteRead { allocates: true },  // window [w r r] → allocate
            ]
        );
        assert!(sw.has_copy());
    }

    #[test]
    fn deallocation_happens_when_writes_take_majority() {
        let mut sw = SlidingWindow::with_initial_copy(3);
        let actions = run(&mut sw, "ww");
        assert_eq!(
            actions,
            vec![
                Action::PropagatedWrite { deallocates: false }, // [r r w]
                Action::PropagatedWrite { deallocates: true },  // [r w w] → deallocate
            ]
        );
        assert!(!sw.has_copy());
    }

    #[test]
    fn copy_state_always_equals_window_majority() {
        let mut sw = SlidingWindow::new(5);
        let sched: Schedule = "rrrwwwrwrwwrrrrwwwwrrr".parse().unwrap();
        for r in &sched {
            sw.on_request(r);
            assert_eq!(sw.has_copy(), sw.window().majority_reads());
        }
    }

    #[test]
    fn sw1_uses_delete_request_on_write() {
        // §4: "instead of sending to the MC a copy of x, the SC simply sends
        // the delete-request".
        let mut sw = SlidingWindow::new(1);
        let actions = run(&mut sw, "rw");
        assert_eq!(
            actions,
            vec![
                Action::RemoteRead { allocates: true },
                Action::DeleteRequestWrite
            ]
        );
    }

    #[test]
    fn sw1_alternating_cost_in_message_model() {
        // On r,w,r,w… each pair costs (1 + ω) + ω = 1 + 2ω — the worst case
        // behind Theorem 11.
        let omega = 0.5;
        let model = CostModel::message(omega);
        let mut sw = SlidingWindow::new(1);
        let sched = Schedule::alternating(Request::Read, 20);
        let cost: f64 = sched.iter().map(|r| model.price(sw.on_request(r))).sum();
        assert!((cost - 10.0 * (1.0 + 2.0 * omega)).abs() < 1e-12);
    }

    #[test]
    fn sw3_never_uses_delete_request_write() {
        let mut sw = SlidingWindow::new(3);
        let sched: Schedule = "rrwwrrwwrwrwrrrwww".parse().unwrap();
        for r in &sched {
            assert_ne!(sw.on_request(r), Action::DeleteRequestWrite);
        }
    }

    #[test]
    fn wk_cycle_costs_k_plus_one_connections() {
        // The canonical adversarial cycle behind Theorem 4: starting from a
        // full-read window, (k+1)/2 writes each cost 1, then (k+1)/2 reads
        // each cost 1 — k + 1 connections per cycle, while OPT pays 1.
        for k in [3usize, 5, 7, 9] {
            let mut sw = SlidingWindow::with_initial_copy(k);
            let half = k.div_ceil(2);
            let cycle = Schedule::write_read_cycles(half, half, 1);
            let cost: f64 = cycle
                .iter()
                .map(|r| CostModel::Connection.price(sw.on_request(r)))
                .sum();
            assert_eq!(cost, (k + 1) as f64, "k = {k}");
            // After the cycle the window is back to majority-reads.
            assert!(sw.has_copy());
        }
    }

    #[test]
    fn allocations_only_on_reads_deallocations_only_on_writes() {
        let mut sw = SlidingWindow::new(7);
        let sched: Schedule = "rrrrwwwwwrrrrrrwwwwwwwrrrwrwrwrw".parse().unwrap();
        for r in &sched {
            let a = sw.on_request(r);
            if a.allocates() {
                assert!(r.is_read());
            }
            if a.deallocates() {
                assert!(r.is_write());
            }
        }
    }

    #[test]
    fn with_window_derives_copy_state() {
        let w = RequestWindow::from_requests(&[Request::Read, Request::Read, Request::Write]);
        let sw = SlidingWindow::with_window(w);
        assert!(sw.has_copy());
    }

    #[test]
    fn reset_restores_initial_window() {
        let mut sw = SlidingWindow::new(3);
        run(&mut sw, "rrrr");
        assert!(sw.has_copy());
        sw.reset();
        assert!(!sw.has_copy());
        assert_eq!(sw.window().writes(), 3);
    }

    #[test]
    fn replica_loss_restores_the_cold_start_window() {
        let mut sw = SlidingWindow::with_initial_copy(3);
        sw.on_replica_lost();
        assert!(!sw.has_copy());
        assert_eq!(sw.window().writes(), 3);
        // Re-allocation follows the ordinary §4 majority rule from cold.
        assert_eq!(
            sw.on_request(Request::Read),
            Action::RemoteRead { allocates: false }
        );
        assert_eq!(
            sw.on_request(Request::Read),
            Action::RemoteRead { allocates: true }
        );
    }

    #[test]
    fn reads_while_copy_held_are_free_even_with_writes_in_window() {
        let mut sw = SlidingWindow::with_initial_copy(5);
        // One write (propagated), then reads stay local.
        assert_eq!(
            sw.on_request(Request::Write),
            Action::PropagatedWrite { deallocates: false }
        );
        assert_eq!(sw.on_request(Request::Read), Action::LocalRead);
    }
}
