//! The competitive-ized static methods T1m and T2m (§7.1).
//!
//! The pure static methods have unbounded worst case. The paper fixes this
//! with a minimal amount of dynamism:
//!
//! * **T1m** normally uses the one-copy scheme; after `m` *consecutive*
//!   reads it switches to two-copies, and reverts at the next write. It is
//!   `(m+1)`-competitive with expected cost
//!   `(1−θ) + (1−θ)^m (2θ−1)` in the connection model — only slightly above
//!   ST1's `1−θ`.
//! * **T2m** is the mirror image: two-copies until `m` consecutive writes,
//!   then one-copy until the next read.
//!
//! Division of labour (who counts what) follows the same observability rule
//! as SWk: in T1m's one-copy phase the SC sees every relevant request (reads
//! arrive remotely, writes are its own), so the SC counts the consecutive
//! reads and piggybacks the allocation on the m-th read's response; at the
//! next write it knows the copy must drop and sends only a delete-request.
//! In T2m's two-copies phase the MC sees every relevant request (writes are
//! propagated to it, reads are its own), so the MC counts consecutive writes
//! and answers the m-th with a delete-request (hence that write costs
//! `1 + ω` in the message model).

use crate::action::Action;
use crate::policy::{AllocationPolicy, PolicySpec};
use crate::request::Request;

/// T1m: one-copy until `m` consecutive reads, two-copies until the next
/// write (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T1 {
    m: usize,
    state: T1State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum T1State {
    /// One-copy phase, counting consecutive reads seen so far.
    OneCopy { consecutive_reads: usize },
    /// Two-copies phase (entered after `m` consecutive reads).
    TwoCopies,
}

impl T1 {
    /// Creates T1m (§7.1) with consecutive-read threshold `m ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` (the phase change would be triggered vacuously).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "T1m requires m ≥ 1");
        T1 {
            m,
            state: T1State::OneCopy {
                consecutive_reads: 0,
            },
        }
    }

    /// The consecutive-read threshold `m` (§7.1).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The consecutive-read streak counted so far in the one-copy phase
    /// (0 in the two-copies phase) — the state the SC carries per §7.1's
    /// division of labour, exposed for snapshot/restore.
    pub fn streak(&self) -> usize {
        match self.state {
            T1State::OneCopy { consecutive_reads } => consecutive_reads,
            T1State::TwoCopies => 0,
        }
    }

    /// Reconstructs the §7.1 T1m automaton mid-stream (snapshot/restore
    /// support): in the
    /// two-copies phase when `has_copy`, else in the one-copy phase with
    /// `streak` consecutive reads already counted (clamped below `m` so
    /// the phase change still triggers on a request, never on restore).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, like [`T1::new`].
    pub fn with_state(m: usize, has_copy: bool, streak: usize) -> Self {
        let mut p = T1::new(m);
        p.state = if has_copy {
            T1State::TwoCopies
        } else {
            T1State::OneCopy {
                consecutive_reads: streak.min(m - 1),
            }
        };
        p
    }
}

impl AllocationPolicy for T1 {
    fn spec(&self) -> Option<PolicySpec> {
        Some(PolicySpec::T1 { m: self.m })
    }

    fn has_copy(&self) -> bool {
        matches!(self.state, T1State::TwoCopies)
    }

    fn on_request(&mut self, req: Request) -> Action {
        match (self.state, req) {
            (T1State::OneCopy { consecutive_reads }, Request::Read) => {
                let streak = consecutive_reads + 1;
                if streak >= self.m {
                    // The SC saw the m-th consecutive read and piggybacks
                    // the copy on the response.
                    self.state = T1State::TwoCopies;
                    Action::RemoteRead { allocates: true }
                } else {
                    self.state = T1State::OneCopy {
                        consecutive_reads: streak,
                    };
                    Action::RemoteRead { allocates: false }
                }
            }
            (T1State::OneCopy { .. }, Request::Write) => {
                self.state = T1State::OneCopy {
                    consecutive_reads: 0,
                };
                Action::SilentWrite
            }
            (T1State::TwoCopies, Request::Read) => Action::LocalRead,
            (T1State::TwoCopies, Request::Write) => {
                // Revert to one-copy: the SC knows the rule, so it sends
                // only the delete-request rather than propagating data.
                self.state = T1State::OneCopy {
                    consecutive_reads: 0,
                };
                Action::DeleteRequestWrite
            }
        }
    }

    fn on_replica_lost(&mut self) {
        // A volatile MC crash drops the replica: restart the §7.1 one-copy
        // phase with a fresh read streak. In the one-copy phase the SC holds
        // the streak (division of labour) and survives the crash, so the
        // hook is a no-op there.
        if matches!(self.state, T1State::TwoCopies) {
            self.state = T1State::OneCopy {
                consecutive_reads: 0,
            };
        }
    }

    fn reset(&mut self) {
        self.state = T1State::OneCopy {
            consecutive_reads: 0,
        };
    }
}

/// T2m: two-copies until `m` consecutive writes, one-copy until the next
/// read (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T2 {
    m: usize,
    state: T2State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum T2State {
    /// Two-copies phase, counting consecutive propagated writes.
    TwoCopies { consecutive_writes: usize },
    /// One-copy phase (entered after `m` consecutive writes).
    OneCopy,
}

impl T2 {
    /// Creates T2m (§7.1) with consecutive-write threshold `m ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "T2m requires m ≥ 1");
        T2 {
            m,
            state: T2State::TwoCopies {
                consecutive_writes: 0,
            },
        }
    }

    /// The consecutive-write threshold `m` (§7.1).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The consecutive-write streak counted so far in the two-copies phase
    /// (0 in the one-copy phase) — the state the MC carries per §7.1's
    /// division of labour, exposed for snapshot/restore.
    pub fn streak(&self) -> usize {
        match self.state {
            T2State::TwoCopies { consecutive_writes } => consecutive_writes,
            T2State::OneCopy => 0,
        }
    }

    /// Reconstructs the §7.1 T2m automaton mid-stream (snapshot/restore
    /// support): in the
    /// two-copies phase with `streak` consecutive writes counted when
    /// `has_copy` (clamped below `m`), else in the one-copy phase.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, like [`T2::new`].
    pub fn with_state(m: usize, has_copy: bool, streak: usize) -> Self {
        let mut p = T2::new(m);
        p.state = if has_copy {
            T2State::TwoCopies {
                consecutive_writes: streak.min(m - 1),
            }
        } else {
            T2State::OneCopy
        };
        p
    }
}

impl AllocationPolicy for T2 {
    fn spec(&self) -> Option<PolicySpec> {
        Some(PolicySpec::T2 { m: self.m })
    }

    fn has_copy(&self) -> bool {
        matches!(self.state, T2State::TwoCopies { .. })
    }

    fn on_request(&mut self, req: Request) -> Action {
        match (self.state, req) {
            (T2State::TwoCopies { .. }, Request::Read) => {
                self.state = T2State::TwoCopies {
                    consecutive_writes: 0,
                };
                Action::LocalRead
            }
            (T2State::TwoCopies { consecutive_writes }, Request::Write) => {
                let streak = consecutive_writes + 1;
                if streak >= self.m {
                    // The MC counted the m-th consecutive write and answers
                    // with a delete-request.
                    self.state = T2State::OneCopy;
                    Action::PropagatedWrite { deallocates: true }
                } else {
                    self.state = T2State::TwoCopies {
                        consecutive_writes: streak,
                    };
                    Action::PropagatedWrite { deallocates: false }
                }
            }
            (T2State::OneCopy, Request::Read) => {
                // Next read re-establishes the replica (piggybacked).
                self.state = T2State::TwoCopies {
                    consecutive_writes: 0,
                };
                Action::RemoteRead { allocates: true }
            }
            (T2State::OneCopy, Request::Write) => Action::SilentWrite,
        }
    }

    fn on_replica_lost(&mut self) {
        // A volatile MC crash drops the replica: T2m behaves as if its §7.1
        // one-copy phase had been entered; the next read re-allocates. An
        // already one-copy T2m loses nothing.
        self.state = T2State::OneCopy;
    }

    fn reset(&mut self) {
        self.state = T2State::TwoCopies {
            consecutive_writes: 0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::schedule::Schedule;

    fn actions_of(policy: &mut dyn AllocationPolicy, s: &str) -> Vec<Action> {
        let sched: Schedule = s.parse().unwrap();
        sched.iter().map(|r| policy.on_request(r)).collect()
    }

    #[test]
    fn t1_allocates_after_m_consecutive_reads() {
        let mut p = T1::new(3);
        let actions = actions_of(&mut p, "rrr");
        assert_eq!(
            actions,
            vec![
                Action::RemoteRead { allocates: false },
                Action::RemoteRead { allocates: false },
                Action::RemoteRead { allocates: true },
            ]
        );
        assert!(p.has_copy());
    }

    #[test]
    fn t1_write_resets_the_streak() {
        let mut p = T1::new(2);
        actions_of(&mut p, "rwr");
        assert!(
            !p.has_copy(),
            "streak was interrupted: r w r is not 2 consecutive reads"
        );
        p.on_request(Request::Read);
        assert!(p.has_copy(), "r after r completes the streak");
    }

    #[test]
    fn t1_reverts_on_next_write_with_delete_request() {
        let mut p = T1::new(2);
        actions_of(&mut p, "rr");
        assert!(p.has_copy());
        assert_eq!(p.on_request(Request::Read), Action::LocalRead);
        assert_eq!(p.on_request(Request::Write), Action::DeleteRequestWrite);
        assert!(!p.has_copy());
    }

    #[test]
    fn t1_worst_cycle_costs_m_plus_one_connections() {
        // Adversarial cycle behind the (m+1)-competitiveness: m reads (each
        // remote) then one write (delete-request) = m + 1 connections, while
        // the offline optimum pays 1.
        for m in [1usize, 2, 5, 8] {
            let mut p = T1::new(m);
            let cycle = Schedule::read_write_cycles(m, 1, 1);
            let cost: f64 = cycle
                .iter()
                .map(|r| CostModel::Connection.price(p.on_request(r)))
                .sum();
            assert_eq!(cost, (m + 1) as f64, "m = {m}");
        }
    }

    #[test]
    fn t2_deallocates_after_m_consecutive_writes() {
        let mut p = T2::new(3);
        let actions = actions_of(&mut p, "www");
        assert_eq!(
            actions,
            vec![
                Action::PropagatedWrite { deallocates: false },
                Action::PropagatedWrite { deallocates: false },
                Action::PropagatedWrite { deallocates: true },
            ]
        );
        assert!(!p.has_copy());
    }

    #[test]
    fn t2_read_resets_the_streak() {
        let mut p = T2::new(2);
        actions_of(&mut p, "wrw");
        assert!(
            p.has_copy(),
            "streak was interrupted: w r w is not 2 consecutive writes"
        );
        p.on_request(Request::Write);
        assert!(!p.has_copy());
    }

    #[test]
    fn t2_reacquires_on_next_read() {
        let mut p = T2::new(1);
        assert_eq!(
            p.on_request(Request::Write),
            Action::PropagatedWrite { deallocates: true }
        );
        assert_eq!(p.on_request(Request::Write), Action::SilentWrite);
        assert_eq!(
            p.on_request(Request::Read),
            Action::RemoteRead { allocates: true }
        );
        assert!(p.has_copy());
    }

    #[test]
    fn t2_worst_cycle_costs_m_plus_one_connections() {
        for m in [1usize, 2, 5] {
            let mut p = T2::new(m);
            let cycle = Schedule::write_read_cycles(m, 1, 1);
            let cost: f64 = cycle
                .iter()
                .map(|r| CostModel::Connection.price(p.on_request(r)))
                .sum();
            assert_eq!(cost, (m + 1) as f64, "m = {m}");
        }
    }

    #[test]
    fn zero_threshold_is_rejected() {
        assert!(std::panic::catch_unwind(|| T1::new(0)).is_err());
        assert!(std::panic::catch_unwind(|| T2::new(0)).is_err());
    }

    #[test]
    fn reset_restores_initial_phase() {
        let mut p = T1::new(2);
        actions_of(&mut p, "rr");
        assert!(p.has_copy());
        p.reset();
        assert!(!p.has_copy());

        let mut p = T2::new(2);
        actions_of(&mut p, "ww");
        assert!(!p.has_copy());
        p.reset();
        assert!(p.has_copy());
    }

    #[test]
    fn specs_include_threshold() {
        assert_eq!(T1::new(15).spec(), Some(PolicySpec::T1 { m: 15 }));
        assert_eq!(T2::new(7).spec(), Some(PolicySpec::T2 { m: 7 }));
    }

    #[test]
    fn with_state_roundtrips_mid_stream_state() {
        // Drive T1 one read short of its threshold, clone the observable
        // state through `with_state`, and check both continue identically.
        let mut a = T1::new(3);
        actions_of(&mut a, "rr");
        let mut b = T1::with_state(a.m(), a.has_copy(), a.streak());
        assert_eq!(a.on_request(Request::Read), b.on_request(Request::Read));
        assert!(a.has_copy() && b.has_copy());

        let mut a = T2::new(3);
        actions_of(&mut a, "ww");
        let mut b = T2::with_state(a.m(), a.has_copy(), a.streak());
        assert_eq!(a.on_request(Request::Write), b.on_request(Request::Write));
        assert!(!a.has_copy() && !b.has_copy());

        // The streak is clamped so a restore can never fire the phase
        // change by itself.
        let p = T1::with_state(2, false, 99);
        assert_eq!(p.streak(), 1);
    }

    #[test]
    fn t1_message_model_costs() {
        // m reads at (1+ω) each, then a write at ω.
        let omega = 0.25;
        let model = CostModel::message(omega);
        let mut p = T1::new(2);
        let cost: f64 = "rrw"
            .parse::<Schedule>()
            .unwrap()
            .iter()
            .map(|r| model.price(p.on_request(r)))
            .sum();
        assert!((cost - (2.0 * (1.0 + omega) + omega)).abs() < 1e-12);
    }
}
