//! A dominance-guided adaptive policy — the §7.2 idea ("dynamically
//! calculate these frequencies [from a window], compute the expected costs
//! … and chose an appropriate future allocation method") applied to the
//! single-object case.
//!
//! **Extension, not in the paper.** The paper's SWk compares raw
//! read/write counts; this policy instead *estimates* θ from the window
//! and consults the paper's own dominance analysis (Theorem 6 regions in
//! the message model, the θ ≷ 1/2 rule in the connection model) to choose
//! which of the three basic schemes — one-copy, two-copies, or
//! drop-on-write (SW1-style) — to emulate next. Scheme changes take effect
//! at the natural free opportunities: allocation piggybacks on a remote
//! read, deallocation rides the next propagated write.
//!
//! The ablation experiment E11 measures what this buys (and costs)
//! relative to plain SWk.

use crate::action::Action;
use crate::cost::CostModel;
use crate::policy::{AllocationPolicy, PolicySpec};
use crate::request::Request;
use crate::window::RequestWindow;
use std::fmt;

/// The basic scheme the adaptive policy is currently emulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TargetScheme {
    /// One-copy: shed the replica, serve reads remotely.
    OneCopy,
    /// Two-copies: hold the replica, absorb write propagations.
    TwoCopies,
    /// SW1-style: hold the replica only between a read and the next write.
    DropOnWrite,
}

/// Estimates θ from a window of the last `k` requests and emulates the
/// scheme the paper's dominance analysis (§7.2, Figure 1) says is cheapest
/// there.
///
/// ```
/// use mdr_core::{AdaptivePolicy, AllocationPolicy, CostModel, Request};
///
/// let mut p = AdaptivePolicy::new(15, CostModel::message(0.3));
/// for _ in 0..20 {
///     p.on_request(Request::Read); // read-heavy ⇒ converges to two-copies
/// }
/// assert!(p.has_copy());
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    window: RequestWindow,
    model: CostModel,
    has_copy: bool,
    target: TargetScheme,
}

impl AdaptivePolicy {
    /// Creates the §7.2 policy with an estimation window of `k` requests
    /// (odd, like SWk's) under `model`. Cold start: no replica, window full
    /// of writes.
    pub fn new(k: usize, model: CostModel) -> Self {
        let window = RequestWindow::filled(k, Request::Write);
        AdaptivePolicy {
            window,
            model,
            has_copy: false,
            target: TargetScheme::OneCopy,
        }
    }

    /// The estimated write fraction θ̂ from the current window — the
    /// "dynamically calculate these frequencies" step of §7.2.
    pub fn estimated_theta(&self) -> f64 {
        self.window.writes() as f64 / self.window.k() as f64
    }

    /// The scheme the dominance analysis picks for an estimated θ̂.
    ///
    /// Message model: Theorem 6's regions (ST1 above `(1+ω)/(1+2ω)`, ST2
    /// below `2ω/(1+2ω)`, SW1 between). Connection model: the §2.1 rule,
    /// with the SW1-style band degenerate (SW1 never strictly wins there),
    /// except that *exact* balance favours the drop-on-write middle ground.
    fn pick_scheme(&self) -> TargetScheme {
        let theta = self.estimated_theta();
        match self.model {
            CostModel::Connection => {
                if theta > 0.5 {
                    TargetScheme::OneCopy
                } else if theta < 0.5 {
                    TargetScheme::TwoCopies
                } else {
                    TargetScheme::DropOnWrite
                }
            }
            CostModel::Message { omega } => {
                let hi = (1.0 + omega) / (1.0 + 2.0 * omega);
                let lo = 2.0 * omega / (1.0 + 2.0 * omega);
                if theta > hi {
                    TargetScheme::OneCopy
                } else if theta < lo {
                    TargetScheme::TwoCopies
                } else {
                    TargetScheme::DropOnWrite
                }
            }
        }
    }
}

impl fmt::Display for AdaptivePolicy {
    /// `AD<k>[<model>]`, e.g. `AD9[connection]` — the label the E11
    /// ablation tables use. The policy has no [`PolicySpec`] encoding
    /// (its cost-model parameter carries a real-valued ω), so display
    /// identity lives here rather than on the spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AD{}[{}]", self.window.k(), self.model)
    }
}

impl AllocationPolicy for AdaptivePolicy {
    fn spec(&self) -> Option<PolicySpec> {
        // An extension beyond the paper's §2/§7.1 roster: θ-band emulation
        // parameterized by a CostModel, which PolicySpec cannot encode
        // faithfully (ω is a real). Identity comes from `Display`.
        None
    }

    fn has_copy(&self) -> bool {
        self.has_copy
    }

    fn on_request(&mut self, req: Request) -> Action {
        self.window.push(req);
        self.target = self.pick_scheme();
        match req {
            Request::Read => {
                if self.has_copy {
                    // Even a one-copy target keeps the replica through
                    // reads: dropping it here would gain nothing (the next
                    // write sheds it for free as part of its propagation).
                    Action::LocalRead
                } else {
                    let wants_copy = matches!(
                        self.target,
                        TargetScheme::TwoCopies | TargetScheme::DropOnWrite
                    );
                    if wants_copy {
                        self.has_copy = true;
                        Action::RemoteRead { allocates: true }
                    } else {
                        Action::RemoteRead { allocates: false }
                    }
                }
            }
            Request::Write => {
                if !self.has_copy {
                    return Action::SilentWrite;
                }
                match self.target {
                    TargetScheme::TwoCopies => Action::PropagatedWrite { deallocates: false },
                    TargetScheme::OneCopy | TargetScheme::DropOnWrite => {
                        // The side in charge of the estimate is the MC (it
                        // holds the replica), so the deallocation is its
                        // reply to the propagated write — unlike true SW1,
                        // where the SC knows k = 1 statically and can skip
                        // the data message.
                        self.has_copy = false;
                        Action::PropagatedWrite { deallocates: true }
                    }
                }
            }
        }
    }

    fn on_replica_lost(&mut self) {
        // A volatile MC crash loses both the replica and the MC-held
        // estimation window: fall back to the cold-start state, like SWk.
        // Without a replica the SC holds the window, which survives.
        if self.has_copy {
            let k = self.window.k();
            self.window = RequestWindow::filled(k, Request::Write);
            self.has_copy = false;
            self.target = TargetScheme::OneCopy;
        }
    }

    fn reset(&mut self) {
        let k = self.window.k();
        self.window = RequestWindow::filled(k, Request::Write);
        self.has_copy = false;
        self.target = TargetScheme::OneCopy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_policy;
    use crate::schedule::Schedule;

    #[test]
    fn converges_to_two_copies_on_read_heavy_streams() {
        let mut p = AdaptivePolicy::new(9, CostModel::Connection);
        for _ in 0..20 {
            p.on_request(Request::Read);
        }
        assert!(p.has_copy());
        assert!(p.estimated_theta() < 0.2);
        // Reads are now free.
        assert_eq!(p.on_request(Request::Read), Action::LocalRead);
    }

    #[test]
    fn converges_to_one_copy_on_write_heavy_streams() {
        let mut p = AdaptivePolicy::new(9, CostModel::Connection);
        // Acquire a copy first…
        for _ in 0..20 {
            p.on_request(Request::Read);
        }
        // …then a write flood sheds it and keeps it shed.
        let mut dealloc_seen = false;
        for _ in 0..20 {
            let a = p.on_request(Request::Write);
            dealloc_seen |= a.deallocates();
        }
        assert!(dealloc_seen);
        assert!(!p.has_copy());
        assert_eq!(p.on_request(Request::Write), Action::SilentWrite);
    }

    #[test]
    fn middle_band_behaves_like_sw1_in_message_model() {
        // ω small ⇒ wide SW1 band; on alternating r/w the policy should
        // acquire on reads and shed on writes.
        let mut p = AdaptivePolicy::new(5, CostModel::message(0.1));
        // Prime the window into the middle band.
        let prime: Schedule = "rwrwr".parse().unwrap();
        for r in &prime {
            p.on_request(r);
        }
        let lo = 2.0 * 0.1 / 1.2;
        let hi = 1.1 / 1.2;
        assert!(p.estimated_theta() > lo && p.estimated_theta() < hi);
        // Now alternate: each read allocates (if shed), each write sheds.
        let a = p.on_request(Request::Write);
        if p.has_copy() {
            unreachable!("write in the middle band must shed the copy: {a}");
        }
        assert_eq!(
            p.on_request(Request::Read),
            Action::RemoteRead { allocates: true }
        );
        assert!(p.on_request(Request::Write).deallocates());
    }

    #[test]
    fn beats_both_statics_on_phase_switching_schedules() {
        let model = CostModel::Connection;
        // 200 reads then 200 writes, repeated.
        let s = Schedule::read_write_cycles(200, 200, 5);
        let mut adaptive = AdaptivePolicy::new(9, model);
        let cost = run_policy(&mut adaptive, &s, model).total_cost;
        let st1 = crate::run::run_spec(crate::policy::PolicySpec::St1, &s, model).total_cost;
        let st2 = crate::run::run_spec(crate::policy::PolicySpec::St2, &s, model).total_cost;
        assert!(cost < st1, "{cost} vs ST1 {st1}");
        assert!(cost < st2, "{cost} vs ST2 {st2}");
    }

    #[test]
    fn reset_restores_cold_start() {
        let mut p = AdaptivePolicy::new(7, CostModel::message(0.5));
        for _ in 0..10 {
            p.on_request(Request::Read);
        }
        assert!(p.has_copy());
        p.reset();
        assert!(!p.has_copy());
        assert_eq!(p.estimated_theta(), 1.0);
    }

    #[test]
    fn copy_state_changes_only_via_transition_actions() {
        let mut p = AdaptivePolicy::new(5, CostModel::message(0.4));
        let s: Schedule = "rrrwwwrrwwrwrwrrrrwwwwr".parse().unwrap();
        let mut prev = p.has_copy();
        for r in &s {
            let a = p.on_request(r);
            let now = p.has_copy();
            match (prev, now) {
                (false, true) => assert!(a.allocates()),
                (true, false) => assert!(a.deallocates()),
                _ => assert!(!a.allocates() && !a.deallocates()),
            }
            prev = now;
        }
    }

    #[test]
    fn display_carries_parameters() {
        let p = AdaptivePolicy::new(9, CostModel::Connection);
        assert_eq!(p.to_string(), "AD9[connection]");
        assert_eq!(p.spec(), None, "no faithful PolicySpec encoding exists");
        #[allow(deprecated)]
        {
            // The deprecated trait path falls back to a placeholder for
            // policies outside the spec roster.
            assert_eq!(p.name(), "unnamed");
        }
    }
}
