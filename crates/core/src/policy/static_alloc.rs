//! The static allocation methods ST1 and ST2 (§2, §5.1).
//!
//! ST1 keeps the item only at the stationary computer: every read is remote
//! (cost 1 connection / `1 + ω`), every write is local at the SC (free).
//! ST2 keeps a replica at the mobile computer at all times: every read is
//! local (free), every write is propagated (cost 1 connection / 1 data
//! message). Neither ever changes its allocation, which is exactly why
//! neither is competitive (§5.3, §6.4).

use crate::action::Action;
use crate::policy::{AllocationPolicy, PolicySpec};
use crate::request::Request;

/// Static one-copy (ST1, §2): the mobile computer never holds a replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct St1;

impl St1 {
    /// Creates the §2 static one-copy policy.
    pub fn new() -> Self {
        St1
    }
}

impl AllocationPolicy for St1 {
    fn spec(&self) -> Option<PolicySpec> {
        Some(PolicySpec::St1)
    }

    fn has_copy(&self) -> bool {
        false
    }

    fn on_request(&mut self, req: Request) -> Action {
        match req {
            Request::Read => Action::RemoteRead { allocates: false },
            Request::Write => Action::SilentWrite,
        }
    }

    fn reset(&mut self) {}
}

/// Static two-copies (ST2, §2): the mobile computer always holds a
/// replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct St2;

impl St2 {
    /// Creates the §2 static two-copies policy.
    pub fn new() -> Self {
        St2
    }
}

impl AllocationPolicy for St2 {
    fn spec(&self) -> Option<PolicySpec> {
        Some(PolicySpec::St2)
    }

    fn has_copy(&self) -> bool {
        true
    }

    fn on_request(&mut self, req: Request) -> Action {
        match req {
            Request::Read => Action::LocalRead,
            Request::Write => Action::PropagatedWrite { deallocates: false },
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::schedule::Schedule;

    #[test]
    fn st1_reads_are_remote_writes_are_free() {
        let mut p = St1::new();
        assert_eq!(
            p.on_request(Request::Read),
            Action::RemoteRead { allocates: false }
        );
        assert_eq!(p.on_request(Request::Write), Action::SilentWrite);
        assert!(!p.has_copy());
    }

    #[test]
    fn st2_reads_are_local_writes_propagate() {
        let mut p = St2::new();
        assert_eq!(p.on_request(Request::Read), Action::LocalRead);
        assert_eq!(
            p.on_request(Request::Write),
            Action::PropagatedWrite { deallocates: false }
        );
        assert!(p.has_copy());
    }

    #[test]
    fn st1_connection_cost_equals_read_count() {
        // §5.1: "For the ST1 algorithm, a write request costs 0, and a read
        // request costs 1 connection."
        let s: Schedule = "rrwrwwr".parse().unwrap();
        let mut p = St1::new();
        let cost: f64 = s
            .iter()
            .map(|r| CostModel::Connection.price(p.on_request(r)))
            .sum();
        assert_eq!(cost, s.reads() as f64);
    }

    #[test]
    fn st2_connection_cost_equals_write_count() {
        let s: Schedule = "rrwrwwr".parse().unwrap();
        let mut p = St2::new();
        let cost: f64 = s
            .iter()
            .map(|r| CostModel::Connection.price(p.on_request(r)))
            .sum();
        assert_eq!(cost, s.writes() as f64);
    }

    #[test]
    fn st1_message_cost_is_reads_times_one_plus_omega() {
        // §6.1: every ST1 read costs (1 + ω), writes are free.
        let omega = 0.3;
        let s: Schedule = "rwrrw".parse().unwrap();
        let mut p = St1::new();
        let cost: f64 = s
            .iter()
            .map(|r| CostModel::message(omega).price(p.on_request(r)))
            .sum();
        assert!((cost - s.reads() as f64 * (1.0 + omega)).abs() < 1e-12);
    }

    #[test]
    fn statics_never_change_allocation() {
        let s = Schedule::alternating(Request::Read, 100);
        let mut one = St1::new();
        let mut two = St2::new();
        for r in &s {
            one.on_request(r);
            two.on_request(r);
            assert!(!one.has_copy());
            assert!(two.has_copy());
        }
    }

    #[test]
    fn reset_is_a_no_op_for_stateless_policies() {
        let mut p = St1::new();
        p.on_request(Request::Read);
        p.reset();
        assert!(!p.has_copy());
    }
}
