//! Stock ticker: an investor's mobile terminal tracking a security price.
//!
//! The paper's introduction motivates exactly this workload: "Investors
//! will access prices of financial instruments." Market behaviour is
//! phased — during quiet hours the investor polls the price often while it
//! barely changes (read-heavy, θ low); during volatile stretches the feed
//! updates far faster than the investor reads (write-heavy, θ high).
//!
//! A static allocation loses one of the two phases. The sliding window
//! adapts: it subscribes (allocates a replica) during quiet hours and
//! unsubscribes during volatility. This example measures that adaptivity
//! end to end through the distributed protocol, including how the window
//! size trades adaptation speed against stability.
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```

use mobile_replication::prelude::*;
use mobile_replication::sim::{PhasedWorkload, RunLimit};

fn run_phased(spec: PolicySpec, model: CostModel) -> (f64, u64) {
    // 8 alternating phases of 5 000 requests: quiet (θ = 0.1) ↔ volatile
    // (θ = 0.9); rate 2 requests per minute.
    let mut workload = PhasedWorkload::new(2.0, 5_000, 0.1, 0.9, 2024);
    let Ok(builder) = SimBuilder::new(spec) else {
        unreachable!("example policies are valid by construction")
    };
    let mut sim = builder.simulation();
    let report = sim.run(&mut workload, RunLimit::Requests(40_000));
    (
        report.cost_per_request(model),
        report.allocations + report.deallocations,
    )
}

fn main() {
    let model = CostModel::message(0.2); // packet network: short control frames
    println!("Mobile stock ticker — quiet (θ=0.1) ↔ volatile (θ=0.9) phases");
    println!("message cost model, ω = 0.2\n");
    println!(
        "{:<8} {:>14} {:>16} {:>26}",
        "policy", "cost/request", "replica flips", "phase-mean EXP (theory)"
    );

    // Theory: with equal time in both phases, the achievable phase-aware
    // mean is the average of the per-phase expected costs.
    for &spec in &PolicySpec::roster(&[1, 3, 9, 31, 101], &[]) {
        let (cost, flips) = run_phased(spec, model);
        let phase_mean = 0.5 * (expected_cost(spec, model, 0.1) + expected_cost(spec, model, 0.9));
        println!(
            "{:<8} {:>14.4} {:>16} {:>26.4}",
            spec.to_string(),
            cost,
            flips,
            phase_mean
        );
    }

    println!();
    println!("Reading the table:");
    println!(" * ST1 pays (1+ω) on every quiet-hour read; ST2 pays 1 on every volatile write.");
    println!(" * Small windows (SW1, SW3) adapt within a few requests of each phase change");
    println!("   but keep paying thrash cost inside a phase (replica flips stay high).");
    println!(" * Large windows (SW101) adapt ~k/2 requests late at each boundary, visible as");
    println!("   the gap between measured cost and the phase-mean theory column.");
    println!(" * The paper's §9 advice: pick k to balance those two effects (e.g. k = 9).");

    // Confirm the adaptive policies actually beat both statics here.
    let (st1, _) = run_phased(PolicySpec::St1, model);
    let (st2, _) = run_phased(PolicySpec::St2, model);
    let (sw9, _) = run_phased(PolicySpec::SlidingWindow { k: 9 }, model);
    assert!(
        sw9 < st1 && sw9 < st2,
        "SW9 ({sw9:.4}) should beat ST1 ({st1:.4}) and ST2 ({st2:.4}) on phased workloads"
    );
    println!("\nSW9 beats both statics on this workload: confirmed.");
}
