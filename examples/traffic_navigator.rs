//! Traffic navigator: multi-object allocation for a route-planning car
//! computer (§7.2).
//!
//! The paper's introduction: "route-planning computers in cars will access
//! traffic information." Model three traffic segments — the commuter's
//! home segment (read constantly, updated rarely overnight), the downtown
//! segment (updated every few seconds at rush hour, read occasionally),
//! and the highway segment (read and written together with downtown when
//! planning cross-town routes — a *joint* operation).
//!
//! The §7.2 machinery picks which segments to replicate on the car's
//! computer; the windowed variant learns the frequencies online and tracks
//! the optimum as rush hour begins.
//!
//! ```text
//! cargo run --release --example traffic_navigator
//! ```

use mobile_replication::multi::{
    simulate_windowed, simulate_windowed_shift, Allocation, ObjectSet, OpKind, Operation,
    OperationProfile, WindowedAllocator,
};

const HOME: usize = 0;
const DOWNTOWN: usize = 1;
const HIGHWAY: usize = 2;

fn overnight_profile() -> OperationProfile {
    let home = ObjectSet::singleton(HOME);
    let downtown = ObjectSet::singleton(DOWNTOWN);
    let dt_hw = ObjectSet::from_objects(&[DOWNTOWN, HIGHWAY]);
    OperationProfile::new(
        3,
        vec![
            (Operation::read(home), 9.0),  // constant glances at the home segment
            (Operation::write(home), 0.5), // rare overnight roadworks updates
            (Operation::read(downtown), 1.0),
            (Operation::write(downtown), 1.0),
            (Operation::read(dt_hw), 2.0), // occasional cross-town planning
            (Operation::write(dt_hw), 0.5),
        ],
    )
}

fn rush_hour_profile() -> OperationProfile {
    let home = ObjectSet::singleton(HOME);
    let downtown = ObjectSet::singleton(DOWNTOWN);
    let dt_hw = ObjectSet::from_objects(&[DOWNTOWN, HIGHWAY]);
    OperationProfile::new(
        3,
        vec![
            (Operation::read(home), 2.0),
            (Operation::write(home), 1.0),
            (Operation::read(downtown), 1.0),
            (Operation::write(downtown), 8.0), // sensors flood the downtown segment
            (Operation::read(dt_hw), 1.0),
            (Operation::write(dt_hw), 4.0),
        ],
    )
}

fn name(a: Allocation) -> String {
    let names = ["home", "downtown", "highway"];
    let members: Vec<&str> = (0..3)
        .filter(|&o| a.0.contains(o))
        .map(|o| names[o])
        .collect();
    if members.is_empty() {
        "∅".to_owned()
    } else {
        members.join("+")
    }
}

fn main() {
    println!("Traffic navigator — three road segments, joint cross-town operations\n");

    // --- known frequencies: enumerate all 2³ allocations (§7.2) ---
    for (label, profile) in [
        ("overnight", overnight_profile()),
        ("rush hour", rush_hour_profile()),
    ] {
        println!("=== {label} frequencies known in advance ===");
        println!("{:<22} {:>18}", "replicate", "EXP per operation");
        let mut costs: Vec<(Allocation, f64)> = ObjectSet::all_subsets(3)
            .map(|s| (Allocation(s), profile.expected_cost(Allocation(s))))
            .collect();
        costs.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (alloc, cost) in &costs {
            println!("{:<22} {:>18.4}", name(*alloc), cost);
        }
        let (best, cost) = profile.optimal_allocation();
        println!(
            "optimal static: replicate {} at EXP = {cost:.4}\n",
            name(best)
        );
    }

    // --- unknown frequencies: the windowed dynamic allocator ---
    println!("=== frequencies unknown: window-based dynamic allocation ===");
    let mut allocator = WindowedAllocator::new(3, 300, 50);
    let stationary = simulate_windowed(&overnight_profile(), &mut allocator, 60_000, 11);
    println!(
        "overnight, 60k operations: dynamic cost {:.0}, optimal-static cost {:.0} \
         (regret ratio {:.3}), converged to replicate {}",
        stationary.dynamic_cost,
        stationary.optimal_static_cost,
        stationary.regret_ratio(),
        name(allocator.current_allocation()),
    );

    let mut allocator = WindowedAllocator::new(3, 300, 50);
    let shifting = simulate_windowed_shift(
        &overnight_profile(),
        &rush_hour_profile(),
        &mut allocator,
        40_000,
        11,
    );
    println!(
        "overnight → rush hour (40k ops each): dynamic cost {:.0} vs best single static {:.0}",
        shifting.dynamic_cost, shifting.optimal_static_cost,
    );
    assert!(
        shifting.dynamic_cost < shifting.optimal_static_cost,
        "the adaptive allocator must beat every fixed allocation across the shift"
    );
    println!(
        "the dynamic allocator re-allocated {} times and beat every static scheme: confirmed.",
        shifting.reallocations
    );

    // Sanity: during rush hour a joint write is billed once even though it
    // touches two segments (one connection per §7.2).
    let rush = rush_hour_profile();
    let joint_write = Operation {
        kind: OpKind::Write,
        objects: ObjectSet::from_objects(&[DOWNTOWN, HIGHWAY]),
    };
    let all = Allocation::full(3);
    assert_eq!(all.connection_cost(joint_write), 1.0);
    let _ = rush;
}
