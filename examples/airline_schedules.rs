//! Airline schedules: choosing a cost model and a policy from tariffs.
//!
//! The paper's introduction prices the two wireless tariffs of 1994: a
//! cellular connection at ~$0.35/minute and RAM Mobile Data at ~$0.08 per
//! data message. A passenger's notebook tracks a flight-schedule record;
//! the airline pushes updates. This example turns real tariffs into the
//! paper's model parameters, asks the analysis which policy to run, and
//! verifies the recommendation in simulation — including the Figure 1
//! region lookup for the message network.
//!
//! ```text
//! cargo run --release --example airline_schedules
//! ```

use mobile_replication::analysis::dominance::{message_winner, Winner};
use mobile_replication::analysis::window_choice::{min_beneficial_k, recommend_k};
use mobile_replication::prelude::*;

fn main() {
    // --- tariffs → model parameters ---
    // Cellular: every remote interaction is one minimum-length connection.
    let cellular = CostModel::Connection;
    let dollars_per_connection = 0.35;
    // Packet network: a schedule record is one data message ($0.08); a
    // read-request / delete-request control frame is ~a quarter the length.
    let omega = 0.25;
    let packet = CostModel::message(omega);
    let dollars_per_data_msg = 0.08;

    // The flight record changes moderately often relative to lookups while
    // the passenger is planning: θ = 0.35.
    let theta = 0.35;
    let requests = 60_000;

    println!("Flight-schedule tracking: θ = {theta}, ω = {omega}\n");

    // --- what does the analysis recommend? ---
    // Cellular (§5): the cheaper static when θ is known…
    let cell_static = if theta >= 0.5 {
        PolicySpec::St1
    } else {
        PolicySpec::St2
    };
    println!(
        "cellular, θ known: pick {} (EXP = {:.4} connections/request)",
        cell_static,
        expected_cost(cell_static, cellular, theta)
    );
    // …and a window balancing AVG/competitiveness when θ drifts (§9).
    let rec = recommend_k(0.10);
    println!(
        "cellular, θ drifting: pick SW{} (AVG within {:.0}% of optimum, {}-competitive)",
        rec.k,
        rec.avg_excess * 100.0,
        rec.competitive_factor
    );

    // Packet network (§6 / Figure 1): look the point up in the dominance map.
    let winner = message_winner(theta, omega);
    let winner_name = match winner {
        Winner::St1 => "ST1",
        Winner::St2 => "ST2",
        Winner::Sw1 => "SW1",
    };
    println!("packet network, θ known: Figure 1 region at (θ, ω) → {winner_name}");
    match min_beneficial_k(omega) {
        None => println!(
            "packet network, θ drifting: ω = {omega} ≤ 0.4 ⇒ SW1 has the best AVG (Corollary 3)"
        ),
        Some(k0) => println!("packet network, θ drifting: pick SWk with k ≥ {k0} (Corollary 4)"),
    }

    // --- verify in simulation, in dollars ---
    println!("\nsimulated monthly bill ({requests} requests):");
    println!(
        "{:<8} {:>18} {:>18}",
        "policy", "cellular ($)", "packet ($)"
    );
    let candidates = PolicySpec::roster(&[1, 9], &[]);
    let mut best_packet: Option<(String, f64)> = None;
    for &spec in &candidates {
        let report = Simulation::run_poisson(spec, theta, requests, 777);
        let cell_cost = report.cost(cellular) * dollars_per_connection;
        let packet_cost = report.cost(packet) * dollars_per_data_msg;
        if best_packet.as_ref().is_none_or(|(_, c)| packet_cost < *c) {
            best_packet = Some((spec.to_string(), packet_cost));
        }
        println!(
            "{:<8} {:>18.2} {:>18.2}",
            spec.to_string(),
            cell_cost,
            packet_cost
        );
    }
    let (best_name, _) = best_packet.expect("candidates non-empty");
    println!("\ncheapest on the packet network: {best_name}");
    assert_eq!(
        best_name, winner_name,
        "the Figure 1 lookup must agree with the simulated bill"
    );
    println!("matches the Figure 1 region lookup: confirmed.");
}
