//! Adversarial demo: why competitiveness matters and what it costs.
//!
//! §5.3's warning made concrete: a static method can be beaten arbitrarily
//! badly by an unlucky request sequence, while the sliding window's damage
//! is capped at `k + 1` times the offline optimum (Theorem 4). This example
//! runs the actual adversarial schedules against the offline-optimal
//! dynamic program and prints the ratios converging to the tight factors.
//!
//! ```text
//! cargo run --release --example adversarial_demo
//! ```

use mobile_replication::adversary::{exhaustive_search, generators, measure};
use mobile_replication::analysis::competitive;
use mobile_replication::prelude::*;

fn main() {
    let model = CostModel::Connection;

    // --- the statics have no safety net ---
    println!("=== §5.3: static methods are not competitive ===");
    println!(
        "{:<26} {:>12} {:>10} {:>12}",
        "schedule", "policy cost", "OPT cost", "ratio"
    );
    for n in [16usize, 256, 4_096] {
        let s = generators::static_punisher(PolicySpec::St1, n);
        let r = measure(PolicySpec::St1, &s, model);
        println!(
            "{:<26} {:>12.0} {:>10.0} {:>12.0}",
            format!("ST1 on r^{n}"),
            r.policy_cost,
            r.opt_cost,
            r.ratio.unwrap_or(f64::INFINITY)
        );
    }
    for n in [16usize, 256] {
        let s = generators::static_punisher(PolicySpec::St2, n);
        let r = measure(PolicySpec::St2, &s, model);
        println!(
            "{:<26} {:>12.0} {:>10.0} {:>12}",
            format!("ST2 on w^{n}"),
            r.policy_cost,
            r.opt_cost,
            "unbounded"
        );
    }

    // --- the window's damage is capped ---
    println!("\n=== Theorem 4: SWk is tightly (k+1)-competitive ===");
    println!(
        "{:<6} {:>9} {:>22} {:>22}",
        "k", "claimed", "ratio on its worst cycle", "exhaustive ≤ len 16"
    );
    for k in [3usize, 5, 9] {
        let spec = PolicySpec::SlidingWindow { k };
        let claimed = competitive::swk_connection_factor(k);
        let schedule = generators::swk_adversarial(k, 300);
        let measured = measure(spec, &schedule, model)
            .ratio
            .expect("OPT pays per cycle");
        let exhaustive = exhaustive_search(spec, model, 16)
            .worst
            .ratio
            .expect("positive OPT");
        println!("{k:<6} {claimed:>9.1} {measured:>22.4} {exhaustive:>22.4}");
        assert!(measured <= claimed + 1e-9, "tightness means never exceeded");
        assert!(
            measured > claimed - 0.05,
            "…and approached on the right schedule"
        );
    }

    // --- what OPT actually does on the adversarial cycle ---
    println!("\n=== inside OPT on the SW3 adversarial cycle ===");
    let schedule: Schedule = "rrrwwrrwwrr".parse().expect("static schedule");
    let outcome = mobile_replication::adversary::opt_outcome(&schedule, model, false);
    println!("schedule: {schedule}");
    let states: String = outcome
        .states
        .iter()
        .map(|&copy| if copy { 'C' } else { '.' })
        .collect();
    println!("OPT copy: {states}   (C = replica held after the request)");
    println!(
        "OPT pays {:.0}: it propagates only the last write of each burst, acquiring the \
         replica exactly in time for the reads.",
        outcome.cost
    );

    // --- message model: smaller windows are safer, bigger windows cheaper ---
    println!("\n=== §2.2: the window-size trade-off at ω = 0.6 ===");
    println!(
        "{:<6} {:>22} {:>22}",
        "k", "competitive factor", "AVG expected cost"
    );
    for k in [1usize, 3, 9, 39] {
        let factor = competitive_factor(PolicySpec::SlidingWindow { k }, CostModel::message(0.6))
            .expect("SWk is competitive");
        let avg = average_expected_cost(PolicySpec::SlidingWindow { k }, CostModel::message(0.6));
        println!("{k:<6} {factor:>22.2} {avg:>22.4}");
    }
    println!("\npick k to balance the two columns — the paper suggests k ≈ 9 (§9).");
}
