//! Quickstart: compare every allocation policy on one workload.
//!
//! A mobile user reads a data item over an expensive wireless link while
//! the stationary database applies writes. Which replica-allocation policy
//! minimizes communication cost? Run:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobile_replication::prelude::*;

fn main() {
    // A workload with a known write fraction: 30% writes, 70% reads.
    let theta = 0.3;
    let requests = 50_000;
    println!("Poisson workload: θ = {theta} (writes), {requests} requests\n");

    let policies = PolicySpec::roster(&[1, 3, 9, 15], &[5]);

    for model in [CostModel::Connection, CostModel::message(0.3)] {
        println!("=== cost model: {model} ===");
        println!(
            "{:<8} {:>14} {:>14} {:>12} {:>12}",
            "policy", "EXP (theory)", "cost/request", "allocs", "deallocs"
        );
        for &spec in &policies {
            // Theory: the paper's closed-form expected cost per request.
            let predicted = expected_cost(spec, model, theta);
            // Practice: run the full distributed MC/SC protocol.
            let report = Simulation::run_poisson(spec, theta, requests, 42);
            println!(
                "{:<8} {:>14.4} {:>14.4} {:>12} {:>12}",
                spec.to_string(),
                predicted,
                report.cost_per_request(model),
                report.allocations,
                report.deallocations,
            );
        }
        println!();
    }

    // With θ known and fixed, the best static wins (Theorem 2)…
    println!("Theorem 2: with θ = {theta} fixed, ST2 is optimal (θ < 1/2).");
    // …but when θ drifts, the sliding window wins on average (Corollary 1):
    let avg_st = average_expected_cost(PolicySpec::St2, CostModel::Connection);
    let avg_sw9 = average_expected_cost(PolicySpec::SlidingWindow { k: 9 }, CostModel::Connection);
    println!(
        "Corollary 1: over drifting θ, AVG(ST2) = {avg_st:.4} but AVG(SW9) = {avg_sw9:.4} — \
         the dynamic policy wins when the future is unknown."
    );
}
