//! Lossy network: does the paper's advice survive an unreliable link?
//!
//! The paper assumes every message arrives. Packet-radio links drop
//! frames, and link-layer ARQ retransmits until delivery — with every
//! attempt billed at the same per-message tariff. This example runs the
//! full MC/SC protocol over links with increasing frame-loss probability
//! and shows the two facts that keep the paper's analysis applicable:
//!
//! 1. every policy's bill inflates by the same `1/(1 − p)` factor, so
//! 2. the cost *ranking* of the policies — everything the paper's advice
//!    rests on — is unchanged.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use mobile_replication::prelude::*;
use mobile_replication::sim::PoissonWorkload;

fn run(spec: PolicySpec, loss: f64) -> SimReport {
    let Ok(builder) = SimBuilder::new(spec) else {
        unreachable!("example policies are valid by construction")
    };
    let builder = if loss > 0.0 {
        let Ok(lossy) = builder.loss(loss, 0.05, 0xBAD) else {
            unreachable!("example loss grid is valid by construction")
        };
        lossy
    } else {
        builder
    };
    let mut sim = builder.simulation();
    let mut workload = PoissonWorkload::from_theta(1.0, 0.35, 4242);
    sim.run(&mut workload, RunLimit::Requests(30_000))
}

fn main() {
    let model = CostModel::message(0.4);
    let policies = PolicySpec::roster(&[1, 9], &[]);
    let losses = [0.0, 0.1, 0.3, 0.5];

    println!("30k Poisson requests, θ = 0.35, message model ω = 0.4, ARQ link\n");
    print!("{:<8}", "policy");
    for &p in &losses {
        print!(" {:>16}", format!("p = {p}"));
    }
    println!("{:>16}", "retransmits@0.5");

    for &spec in &policies {
        print!("{:<8}", spec.to_string());
        let mut last_retx = 0;
        for &p in &losses {
            let report = run(spec, p);
            print!(" {:>16.4}", report.cost_per_request(model));
            last_retx = report.retransmissions;
        }
        println!("{last_retx:>16}");
    }

    println!();
    println!("Inflation check at p = 0.3 (expected ×{:.4}):", 1.0 / 0.7);
    for &spec in &policies {
        let base = run(spec, 0.0).cost_per_request(model);
        let lossy = run(spec, 0.3).cost_per_request(model);
        println!("  {:<6} ×{:.4}", spec.to_string(), lossy / base);
    }

    // The protocol itself is untouched: the oracle check (on by default)
    // already asserted every action matched the reference policy; confirm
    // the ranking is stable across loss levels.
    let rank = |loss: f64| {
        let mut v: Vec<(String, f64)> = policies
            .iter()
            .map(|&s| (s.to_string(), run(s, loss).cost_per_request(model)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
    };
    let dry = rank(0.0);
    let wet = rank(0.5);
    assert_eq!(dry, wet, "loss must not reorder the policies");
    println!(
        "\nranking at every loss level: {} — the paper's advice is loss-invariant.",
        dry.join(" < ")
    );
}
